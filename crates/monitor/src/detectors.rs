//! Passive attack detectors over collector observations.
//!
//! Each detector implements one of the paper's attack classes as an
//! inference problem on MRT data:
//!
//! * **RTBH abuse** (§5.1 / Fig 7) — blackhole-tagged announcements whose
//!   origin contradicts the covering prefix (hijack + blackhole), whose
//!   tagged paths contain an AS adjacency never seen elsewhere (forged-
//!   origin hijack), or whose inferred tagger is not the victim
//!   (third-party trigger).
//! * **Traffic-steering abuse** (§5.2 / Fig 8) — prepend communities whose
//!   inferred tagger is not the origin, i.e. someone mid-path requested
//!   prepending of someone else's route.
//! * **Route manipulation** (§5.3 / Fig 9) — conflicting route-server
//!   control communities (announce-to *and* suppress for the same member)
//!   on one update, the evaluation-order exploit of §7.5.
//! * **Hygiene anomalies** — contradictory location tags (§7.7) and
//!   well-known communities (NO_EXPORT / NO_ADVERTISE) that must never
//!   reach a collector session.
//!
//! Detection quality is measured in [`crate::groundtruth`]; the detectors
//! deliberately accept imperfect precision rather than miss attacks —
//! the paper's §8 envisions attribution and discouragement, not blocking.

use crate::dictionary::{CommunityDictionary, CommunityKind};
use crate::tagger::{attribute_among, TaggerAttribution};
use bgpworms_core::{FilteringAnalysis, ObservationSet, UpdateObservation};
use bgpworms_topology::Topology;
use bgpworms_types::{Asn, Community, Prefix};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Likely benign misconfiguration; worth reporting.
    Info,
    /// Suspicious; operator attention advised.
    Warning,
    /// Attack-shaped; reachability of someone's prefix is at stake.
    Critical,
}

/// What a detector believes it found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    /// Blackhole community on a more-specific whose origin contradicts the
    /// covering prefix, or on a path with a never-seen-elsewhere adjacency.
    RtbhHijack,
    /// Blackhole community whose inferred tagger is not the prefix origin.
    RtbhThirdParty,
    /// Prepend community whose inferred tagger is not the origin (or, with
    /// topology knowledge, not a customer of the community target).
    SteeringAbuse,
    /// Announce-to and suppress control communities for the same route-
    /// server member on one update.
    RouteServerConflict,
    /// Two different location tags of the same owner on one update.
    ContradictoryLocation,
    /// NO_EXPORT / NO_ADVERTISE observed at a collector.
    WellKnownLeak,
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AlertKind::RtbhHijack => "rtbh-hijack",
            AlertKind::RtbhThirdParty => "rtbh-third-party",
            AlertKind::SteeringAbuse => "steering-abuse",
            AlertKind::RouteServerConflict => "rs-conflict",
            AlertKind::ContradictoryLocation => "contradictory-location",
            AlertKind::WellKnownLeak => "well-known-leak",
        };
        f.write_str(s)
    }
}

/// One alert raised by a detector.
#[derive(Debug, Clone)]
pub struct Alert {
    /// What was detected.
    pub kind: AlertKind,
    /// The affected prefix.
    pub prefix: Prefix,
    /// The community that triggered the detection, when applicable.
    pub community: Option<Community>,
    /// Suspected responsible ASes (tagger attribution's best set).
    pub suspected: Vec<Asn>,
    /// Human-readable evidence.
    pub evidence: String,
    /// Severity.
    pub severity: Severity,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}] {} {} ", self.severity, self.kind, self.prefix)?;
        if let Some(c) = self.community {
            write!(f, "community {c} ")?;
        }
        if !self.suspected.is_empty() {
            let s: Vec<String> = self.suspected.iter().map(|a| a.to_string()).collect();
            write!(f, "suspected [{}] ", s.join(", "))?;
        }
        write!(f, "— {}", self.evidence)
    }
}

/// The passive monitor: observation set + community dictionary (+ optional
/// filtering prior and topology for relationship checks).
pub struct Monitor<'a> {
    set: &'a ObservationSet,
    dict: &'a CommunityDictionary,
    filters: Option<&'a FilteringAnalysis>,
    topo: Option<&'a Topology>,
    by_prefix: BTreeMap<Prefix, Vec<&'a UpdateObservation>>,
}

impl<'a> Monitor<'a> {
    /// Builds the monitor and its per-prefix index.
    pub fn new(set: &'a ObservationSet, dict: &'a CommunityDictionary) -> Self {
        let mut by_prefix: BTreeMap<Prefix, Vec<&UpdateObservation>> = BTreeMap::new();
        for obs in set.announcements() {
            if obs.path.is_empty() {
                continue;
            }
            by_prefix.entry(obs.prefix).or_default().push(obs);
        }
        Monitor {
            set,
            dict,
            filters: None,
            topo: None,
            by_prefix,
        }
    }

    /// Adds the Fig 6 filtering analysis as an attribution prior.
    pub fn with_filters(mut self, filters: &'a FilteringAnalysis) -> Self {
        self.filters = Some(filters);
        self
    }

    /// Adds relationship knowledge (the paper's CAIDA-dataset analogue) for
    /// the steering customer-of-target check.
    pub fn with_topology(mut self, topo: &'a Topology) -> Self {
        self.topo = Some(topo);
        self
    }

    /// Runs every detector; alerts sorted by severity (critical first),
    /// then prefix.
    pub fn run(&self) -> Vec<Alert> {
        let mut alerts = self.rtbh_alerts();
        alerts.extend(self.steering_alerts());
        alerts.extend(self.conflict_alerts());
        alerts.extend(self.location_alerts());
        alerts.extend(self.well_known_alerts());
        alerts.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.prefix.cmp(&b.prefix))
                .then(a.kind.cmp(&b.kind))
        });
        alerts
    }

    fn attribution(&self, prefix: Prefix, community: Community) -> TaggerAttribution {
        let empty: Vec<&UpdateObservation> = Vec::new();
        let announcements = self.by_prefix.get(&prefix).unwrap_or(&empty);
        // Action communities are tagged by the requester, not the owner —
        // the §4.3 owner prior would pin every blackhole request on the
        // service provider.
        let owner_prior = !self.dict.is_action(community);
        attribute_among(announcements, prefix, community, self.filters, owner_prior)
    }

    /// Observed origins of a prefix.
    fn origins_of(&self, prefix: Prefix) -> BTreeSet<Asn> {
        self.by_prefix
            .get(&prefix)
            .map(|v| v.iter().filter_map(|o| o.origin()).collect())
            .unwrap_or_default()
    }

    /// The closest observed strictly-covering prefix, if any.
    fn covering_of(&self, prefix: Prefix) -> Option<Prefix> {
        self.by_prefix
            .keys()
            .filter(|p| **p != prefix && p.covers(&prefix))
            .max_by_key(|p| p.len())
            .copied()
    }

    /// RTBH detectors (hijack + blackhole, novel adjacency, third-party
    /// trigger).
    pub fn rtbh_alerts(&self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        // Distinct (prefix, blackhole community) pairs.
        let mut pairs: BTreeSet<(Prefix, Community)> = BTreeSet::new();
        for obs in self.set.announcements() {
            for &c in &obs.communities {
                if self.dict.is_blackhole(c) {
                    pairs.insert((obs.prefix, c));
                }
            }
        }

        for (prefix, community) in pairs {
            let tagged_origins: BTreeSet<Asn> = self
                .by_prefix
                .get(&prefix)
                .map(|v| {
                    v.iter()
                        .filter(|o| o.communities.contains(&community))
                        .filter_map(|o| o.origin())
                        .collect()
                })
                .unwrap_or_default();

            // 1. Hijack by origin contradiction with the covering prefix.
            if let Some(covering) = self.covering_of(prefix) {
                let covering_origins = self.origins_of(covering);
                if !covering_origins.is_empty() && tagged_origins.is_disjoint(&covering_origins) {
                    alerts.push(Alert {
                        kind: AlertKind::RtbhHijack,
                        prefix,
                        community: Some(community),
                        suspected: tagged_origins.iter().copied().collect(),
                        evidence: format!(
                            "blackhole-tagged more-specific of {covering} announced by \
                             {:?}, covering prefix originated by {:?}",
                            tagged_origins, covering_origins
                        ),
                        severity: Severity::Critical,
                    });
                    continue;
                }
            }

            // 2. Forged-origin hijack: the tagged paths claim an
            // origin-side adjacency the covering prefix never exhibits.
            if let Some((origin, neighbor)) = self.forged_origin_edge(prefix, community) {
                alerts.push(Alert {
                    kind: AlertKind::RtbhHijack,
                    prefix,
                    community: Some(community),
                    suspected: vec![neighbor],
                    evidence: format!(
                        "blackhole-tagged paths claim adjacency {origin} → {neighbor} \
                         absent from the covering prefix's paths (forged-origin \
                         signature)"
                    ),
                    severity: Severity::Critical,
                });
                continue;
            }

            // 3. Third-party trigger: the inferred tagger excludes every
            // observed origin. Suppressed when the request looks like the
            // service working as intended: victims signal their *direct*
            // providers (§5.1), so a blackhole community owned by an AS
            // adjacent to the origin — or riding an update together with
            // one — is plausibly the victim's own request. (A malicious
            // direct provider is indistinguishable passively; that is the
            // paper's authentication gap, not a detector deficiency.)
            if self.plausible_direct_request(prefix, community) {
                continue;
            }
            let att = self.attribution(prefix, community);
            if att.candidates.is_empty() {
                continue;
            }
            let best = att.best_set();
            let origin_credible = tagged_origins.iter().any(|o| best.contains(o));
            if !origin_credible {
                alerts.push(Alert {
                    kind: AlertKind::RtbhThirdParty,
                    prefix,
                    community: Some(community),
                    suspected: best.clone(),
                    evidence: format!(
                        "tagger attribution over {} tagged / {} untagged paths puts the \
                         blackhole request at {:?}, not the origin {:?}",
                        att.tagged_paths, att.untagged_paths, best, tagged_origins
                    ),
                    severity: Severity::Critical,
                });
            }
        }
        alerts
    }

    /// True when some observation of `prefix` tagged with `community`
    /// carries a blackhole community whose owner sits directly adjacent to
    /// the origin on that path — the signature of a victim signalling its
    /// own upstreams (often all of them at once, §4.3). With relationship
    /// knowledge (the paper's CAIDA analogue), "adjacent on the observed
    /// path" widens to "a provider of the origin": the provider that
    /// *accepted* the request attaches NO_EXPORT, so its path never
    /// reaches a collector, yet its community still rides the copies that
    /// escaped via the other upstreams.
    fn plausible_direct_request(&self, prefix: Prefix, community: Community) -> bool {
        let Some(observations) = self.by_prefix.get(&prefix) else {
            return false;
        };
        observations.iter().any(|o| {
            if !o.communities.contains(&community) || o.path.len() < 2 {
                return false;
            }
            let adjacent = o.path[o.path.len() - 2];
            let origin = o.path[o.path.len() - 1];
            o.communities.iter().any(|c| {
                if !self.dict.is_blackhole(*c) {
                    return false;
                }
                let owner = c.owner();
                owner == adjacent
                    || self
                        .topo
                        .map(|t| t.providers_of(origin).any(|p| p == owner))
                        .unwrap_or(false)
            })
        })
    }

    /// Forged-origin evidence: a blackhole-tagged path's edge *into the
    /// origin* never appears among the covering prefix's paths. A victim's
    /// own RTBH request enters via one of its real providers, which also
    /// carry the covering prefix; a forged-origin hijack fabricates an
    /// origin adjacency the covering baseline has never seen.
    fn forged_origin_edge(&self, prefix: Prefix, community: Community) -> Option<(Asn, Asn)> {
        let observations = self.by_prefix.get(&prefix)?;
        let covering = self.covering_of(prefix)?;
        let baseline: BTreeSet<(Asn, Asn)> = self.by_prefix[&covering]
            .iter()
            .flat_map(|o| o.path.windows(2).map(|w| (w[1], w[0])))
            .collect();
        if baseline.is_empty() {
            return None;
        }
        for obs in observations {
            if !obs.communities.contains(&community) {
                continue;
            }
            let n = obs.path.len();
            if n < 2 {
                continue;
            }
            let edge = (obs.path[n - 1], obs.path[n - 2]);
            if !baseline.contains(&edge) {
                return Some(edge);
            }
        }
        None
    }

    /// Steering detectors: prepend communities whose tagger is not the
    /// origin (or not a customer of the target, with topology knowledge).
    pub fn steering_alerts(&self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let prepend_comms: BTreeSet<Community> = self
            .dict
            .iter()
            .filter(|(_, k)| matches!(k, CommunityKind::Prepend(_)))
            .map(|(c, _)| c)
            .collect();

        let mut pairs: BTreeSet<(Prefix, Community)> = BTreeSet::new();
        for obs in self.set.announcements() {
            for &c in &obs.communities {
                if prepend_comms.contains(&c) {
                    pairs.insert((obs.prefix, c));
                }
            }
        }

        for (prefix, community) in pairs {
            let target = community.owner();
            let observations = match self.by_prefix.get(&prefix) {
                Some(v) => v,
                None => continue,
            };
            // Require the steering to have had an effect: the target shows
            // up prepended on at least one tagged path.
            let effect = observations.iter().any(|o| {
                o.communities.contains(&community) && o.prepends.iter().any(|(a, _)| *a == target)
            });
            if !effect {
                continue;
            }
            let tagged_origins: BTreeSet<Asn> = observations
                .iter()
                .filter(|o| o.communities.contains(&community))
                .filter_map(|o| o.origin())
                .collect();
            let att = self.attribution(prefix, community);
            if att.candidates.is_empty() {
                continue;
            }
            let best = att.best_set();
            let origin_credible = tagged_origins.iter().any(|o| best.contains(o));
            if !origin_credible {
                alerts.push(Alert {
                    kind: AlertKind::SteeringAbuse,
                    prefix,
                    community: Some(community),
                    suspected: best.clone(),
                    evidence: format!(
                        "prepend community of {target} with visible prepending; tagger \
                         attribution {:?} excludes the origin {:?}",
                        best, tagged_origins
                    ),
                    severity: Severity::Warning,
                });
                continue;
            }
            // Origin tagged it itself — legitimate only from the target's
            // customer cone (§7.4). Needs relationship knowledge. Every
            // credible tagger stays suspected: the origin may merely be
            // unexculpated while a mid-path AS did the tagging.
            if let Some(topo) = self.topo {
                let origin_is_customer = tagged_origins
                    .iter()
                    .any(|o| topo.customers_of(target).any(|c| c == *o));
                if !origin_is_customer && topo.contains(target) {
                    let mut suspected = best.clone();
                    for o in &tagged_origins {
                        if !suspected.contains(o) {
                            suspected.push(*o);
                        }
                    }
                    alerts.push(Alert {
                        kind: AlertKind::SteeringAbuse,
                        prefix,
                        community: Some(community),
                        suspected,
                        evidence: format!(
                            "origin {:?} requested prepending at {target} but is not \
                             a customer of it",
                            tagged_origins
                        ),
                        severity: Severity::Warning,
                    });
                }
            }
        }
        alerts
    }

    /// Route-server control-community conflicts (§7.5): a suppress (`0:X`)
    /// together with an announce-to (`RS:X`) for the same member, where the
    /// purported route-server AS is off-path (route servers are
    /// transparent).
    pub fn conflict_alerts(&self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut seen: BTreeSet<(Prefix, Community)> = BTreeSet::new();
        for obs in self.set.announcements() {
            for &suppress in &obs.communities {
                if suppress.asn_part() != 0 || suppress.value_part() == 0 {
                    continue;
                }
                let member = suppress.value_part();
                let conflicting: Vec<Community> = obs
                    .communities
                    .iter()
                    .copied()
                    .filter(|c| {
                        c.value_part() == member
                            && c.asn_part() != 0
                            && c.asn_part() != 65_535
                            && !obs.path.contains(&c.owner())
                    })
                    .collect();
                if conflicting.is_empty() {
                    continue;
                }
                if !seen.insert((obs.prefix, suppress)) {
                    continue;
                }
                let att = self.attribution(obs.prefix, suppress);
                let pretty: Vec<String> = conflicting.iter().map(|c| c.to_string()).collect();
                alerts.push(Alert {
                    kind: AlertKind::RouteServerConflict,
                    prefix: obs.prefix,
                    community: Some(suppress),
                    suspected: att.best_set(),
                    evidence: format!(
                        "update carries suppress {suppress} conflicting with \
                         announce-to [{}] for member {member} (evaluation-order \
                         exploit shape, §7.5)",
                        pretty.join(", ")
                    ),
                    severity: Severity::Warning,
                });
            }
        }
        alerts
    }

    /// Contradictory location tags (§7.7): two different location values of
    /// the same owner on one update.
    pub fn location_alerts(&self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut seen: BTreeSet<(Prefix, Asn)> = BTreeSet::new();
        for obs in self.set.announcements() {
            let mut per_owner: BTreeMap<Asn, BTreeSet<Community>> = BTreeMap::new();
            for &c in &obs.communities {
                if matches!(self.dict.kind(c), Some(CommunityKind::Location)) {
                    per_owner.entry(c.owner()).or_default().insert(c);
                }
            }
            for (owner, values) in per_owner {
                if values.len() < 2 || !seen.insert((obs.prefix, owner)) {
                    continue;
                }
                alerts.push(Alert {
                    kind: AlertKind::ContradictoryLocation,
                    prefix: obs.prefix,
                    community: values.iter().next().copied(),
                    suspected: Vec::new(),
                    evidence: format!(
                        "{} location tags of {owner} on one update: {:?} — the \
                         §7.7 fake-location signature",
                        values.len(),
                        values
                    ),
                    severity: Severity::Info,
                });
            }
        }
        alerts
    }

    /// Well-known communities that should never reach an eBGP collector
    /// session.
    pub fn well_known_alerts(&self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut seen: BTreeSet<(Prefix, Community)> = BTreeSet::new();
        for obs in self.set.announcements() {
            for &c in &obs.communities {
                if (c == Community::NO_EXPORT || c == Community::NO_ADVERTISE)
                    && seen.insert((obs.prefix, c))
                {
                    alerts.push(Alert {
                        kind: AlertKind::WellKnownLeak,
                        prefix: obs.prefix,
                        community: Some(c),
                        suspected: obs.path.first().map(|a| vec![*a]).unwrap_or_default(),
                        evidence: format!(
                            "{} observed on an eBGP collector session at {} — the \
                             scope-confining semantics were ignored upstream",
                            c, obs.collector
                        ),
                        severity: Severity::Warning,
                    });
                }
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(
        prefix: &str,
        path: &[u32],
        comms: &[(u16, u16)],
        prepends: &[(u32, usize)],
    ) -> UpdateObservation {
        UpdateObservation {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            time: 0,
            peer: Asn::new(path[0]),
            prefix: prefix.parse().unwrap(),
            path: path.iter().map(|&n| Asn::new(n)).collect(),
            raw_hop_count: path.len() + prepends.iter().map(|(_, n)| n - 1).sum::<usize>(),
            prepends: prepends.iter().map(|&(a, n)| (Asn::new(a), n)).collect(),
            large_communities: vec![],
            communities: comms.iter().map(|&(a, v)| Community::new(a, v)).collect(),
            is_withdrawal: false,
        }
    }

    fn set(observations: Vec<UpdateObservation>) -> ObservationSet {
        ObservationSet {
            observations,
            messages: vec![("RIS".into(), "rrc00".into(), 1)],
        }
    }

    #[test]
    fn legit_rtbh_not_flagged() {
        // Victim origin 1 blackholes its own /32 via provider 9 — every
        // tagged path ends at the origin, nothing else observed.
        let d = CommunityDictionary::new();
        let s = set(vec![
            obs("10.0.0.0/16", &[3, 2, 1], &[], &[]),
            obs("10.0.0.0/16", &[4, 2, 1], &[], &[]),
            obs("10.0.0.0/16", &[3, 9, 1], &[], &[]),
            obs("10.0.0.1/32", &[3, 9, 1], &[(9, 666)], &[]),
            obs("10.0.0.1/32", &[4, 9, 1], &[(9, 666)], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        let alerts = m.rtbh_alerts();
        assert!(alerts.is_empty(), "legitimate RTBH raised {alerts:?}");
    }

    #[test]
    fn hijacked_blackhole_flagged_by_origin_contradiction() {
        // Covering /16 originates at 1; the blackhole-tagged /24 claims
        // origin 7 — classic Fig 7(b).
        let d = CommunityDictionary::new();
        let s = set(vec![
            obs("10.0.0.0/16", &[3, 2, 1], &[], &[]),
            obs("10.0.0.0/24", &[3, 9, 7], &[(9, 666)], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        let alerts = m.rtbh_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::RtbhHijack);
        assert_eq!(alerts[0].severity, Severity::Critical);
        assert_eq!(alerts[0].suspected, vec![Asn::new(7)]);
    }

    #[test]
    fn forged_origin_hijack_flagged_by_novel_adjacency() {
        // Attacker 7 forges origin 1: path "… 7 1" exists only on the
        // blackholed /24; the real paths for everything else never show a
        // 1→7 adjacency.
        let d = CommunityDictionary::new();
        let s = set(vec![
            obs("10.0.0.0/16", &[3, 2, 1], &[], &[]),
            obs("20.0.0.0/16", &[3, 2, 8], &[], &[]),
            obs("10.0.0.0/24", &[3, 9, 7, 1], &[(9, 666)], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        let alerts = m.rtbh_alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::RtbhHijack);
        assert!(alerts[0].evidence.contains("forged-origin"));
    }

    #[test]
    fn multi_upstream_victim_request_not_flagged() {
        // The victim signals BOTH upstreams at once (§4.3's "applied on all
        // peering sessions"): communities 9:666 and 2:666 ride together.
        // Observed paths mostly lack the tag (stripped en route), which
        // would otherwise exculpate nobody and indict the origin — but the
        // adjacent-owner signature marks it as a direct request.
        let d = CommunityDictionary::new();
        let s = set(vec![
            obs("10.0.0.1/32", &[3, 9, 1], &[(9, 666), (2, 666)], &[]),
            obs("10.0.0.1/32", &[4, 2, 1], &[], &[]),
            obs("10.0.0.1/32", &[5, 2, 1], &[], &[]),
            obs("10.0.0.1/32", &[6, 2, 1], &[], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        assert!(
            m.rtbh_alerts().is_empty(),
            "a request tagged with the adjacent provider's community is \
             the service working as intended"
        );
    }

    #[test]
    fn third_party_blackhole_flagged_via_attribution() {
        // On-path AS2 adds 9:666 to the victim's /24 announcement: paths
        // through 2 carry it, another path doesn't → tagger = 2 ≠ origin 1.
        let d = CommunityDictionary::new();
        let s = set(vec![
            obs("10.0.0.0/24", &[3, 2, 1], &[(9, 666)], &[]),
            obs("10.0.0.0/24", &[4, 2, 1], &[(9, 666)], &[]),
            obs("10.0.0.0/24", &[5, 6, 1], &[], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        let alerts = m.rtbh_alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::RtbhThirdParty);
        assert_eq!(alerts[0].suspected, vec![Asn::new(2)]);
    }

    #[test]
    fn steering_abuse_flagged_when_tagger_is_not_origin() {
        let mut d = CommunityDictionary::new();
        d.insert(Community::new(9, 421), CommunityKind::Prepend(2));
        // Target 9 prepended on tagged paths; tag added by 2 (path through
        // 6 lacks it).
        let s = set(vec![
            obs("10.0.0.0/16", &[9, 2, 1], &[(9, 421)], &[(9, 3)]),
            obs("10.0.0.0/16", &[4, 2, 1], &[(9, 421)], &[]),
            obs("10.0.0.0/16", &[5, 6, 1], &[], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        let alerts = m.steering_alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::SteeringAbuse);
        assert!(alerts[0].suspected.contains(&Asn::new(2)));
    }

    #[test]
    fn steering_without_effect_not_flagged() {
        let mut d = CommunityDictionary::new();
        d.insert(Community::new(9, 421), CommunityKind::Prepend(2));
        // Tag present but no prepending of 9 anywhere — inert (e.g. the
        // target ignored a non-customer request, §7.4).
        let s = set(vec![
            obs("10.0.0.0/16", &[9, 2, 1], &[(9, 421)], &[]),
            obs("10.0.0.0/16", &[5, 6, 1], &[], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        assert!(m.steering_alerts().is_empty());
    }

    #[test]
    fn origin_requested_prepending_is_legitimate() {
        let mut d = CommunityDictionary::new();
        d.insert(Community::new(9, 421), CommunityKind::Prepend(2));
        // Origin 1 tags its own announcement; all paths carry it.
        let s = set(vec![
            obs("10.0.0.0/16", &[9, 2, 1], &[(9, 421)], &[(9, 3)]),
            obs("10.0.0.0/16", &[5, 2, 1], &[(9, 421)], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        assert!(
            m.steering_alerts().is_empty(),
            "origin is a credible tagger"
        );
    }

    #[test]
    fn conflicting_rs_communities_flagged() {
        let d = CommunityDictionary::new();
        // 0:40 (suppress member 40) + 125:40 (announce to member 40),
        // owner 125 off-path → conflict.
        let s = set(vec![obs(
            "10.0.0.0/16",
            &[3, 2, 1],
            &[(0, 40), (125, 40)],
            &[],
        )]);
        let m = Monitor::new(&s, &d);
        let alerts = m.conflict_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::RouteServerConflict);
    }

    #[test]
    fn suppress_without_matching_announce_not_flagged() {
        let d = CommunityDictionary::new();
        let s = set(vec![
            obs("10.0.0.0/16", &[3, 2, 1], &[(0, 40)], &[]),
            // same value but owner on path → member-tag of an on-path AS,
            // not an RS control conflict
            obs("20.0.0.0/16", &[3, 2, 1], &[(0, 41), (2, 41)], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        assert!(m.conflict_alerts().is_empty());
    }

    #[test]
    fn contradictory_location_tags_flagged() {
        let mut d = CommunityDictionary::new();
        d.insert(Community::new(6, 201), CommunityKind::Location);
        d.insert(Community::new(6, 202), CommunityKind::Location);
        let s = set(vec![obs(
            "10.0.0.0/16",
            &[6, 2, 1],
            &[(6, 201), (6, 202)],
            &[],
        )]);
        let m = Monitor::new(&s, &d);
        let alerts = m.location_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::ContradictoryLocation);
        assert_eq!(alerts[0].severity, Severity::Info);
    }

    #[test]
    fn single_location_tag_is_fine() {
        let mut d = CommunityDictionary::new();
        d.insert(Community::new(6, 201), CommunityKind::Location);
        let s = set(vec![obs("10.0.0.0/16", &[6, 2, 1], &[(6, 201)], &[])]);
        let m = Monitor::new(&s, &d);
        assert!(m.location_alerts().is_empty());
    }

    #[test]
    fn no_export_at_collector_is_a_leak() {
        let d = CommunityDictionary::new();
        let s = set(vec![obs("10.0.0.0/16", &[3, 2, 1], &[(65535, 65281)], &[])]);
        let m = Monitor::new(&s, &d);
        let alerts = m.well_known_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::WellKnownLeak);
    }

    #[test]
    fn run_sorts_by_severity() {
        let mut d = CommunityDictionary::new();
        d.insert(Community::new(6, 201), CommunityKind::Location);
        d.insert(Community::new(6, 202), CommunityKind::Location);
        let s = set(vec![
            // critical: hijacked blackhole
            obs("10.0.0.0/16", &[3, 2, 1], &[], &[]),
            obs("10.0.0.0/24", &[3, 9, 7], &[(9, 666)], &[]),
            // info: contradictory location
            obs("20.0.0.0/16", &[6, 2, 1], &[(6, 201), (6, 202)], &[]),
        ]);
        let m = Monitor::new(&s, &d);
        let alerts = m.run();
        assert!(alerts.len() >= 2);
        assert_eq!(alerts[0].severity, Severity::Critical);
        assert_eq!(alerts.last().unwrap().severity, Severity::Info);
    }

    #[test]
    fn alert_display_is_informative() {
        let a = Alert {
            kind: AlertKind::RtbhHijack,
            prefix: "10.0.0.0/24".parse().unwrap(),
            community: Some(Community::new(9, 666)),
            suspected: vec![Asn::new(7)],
            evidence: "test".into(),
            severity: Severity::Critical,
        };
        let s = a.to_string();
        assert!(s.contains("rtbh-hijack"));
        assert!(s.contains("9:666"));
        assert!(s.contains("7"));
    }
}
