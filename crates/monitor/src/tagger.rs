//! Tagger attribution: which AS attached a community to a route?
//!
//! The paper's §9: *"a new methodology that assigns the role of the tagger
//! of the BGP community to a network … both the relative position of the
//! network in the path and the BGP community that it tags have to be
//! considered."*
//!
//! A single vantage point cannot attribute a tag: any AS on the observed
//! path (or an off-path route server between two of them) could have added
//! it. Multiple vantage points narrow it down:
//!
//! * the tagger must lie on **every** path where the tag is seen — the
//!   community is carried from the tagger toward each collector, so the
//!   candidate set is the intersection of the tagged paths' AS sets;
//! * paths **without** the tag exonerate candidates *unless* the absence
//!   is explained by stripping: a candidate appearing on an untagged path
//!   is penalized only when no AS between it and that collector shows
//!   filtering behaviour. The filtering evidence is exactly the paper's
//!   Fig 6 per-edge indication analysis ([`FilteringAnalysis`]), reused
//!   here as an attribution prior.
//!
//! Scores combine the absence penalties with the paper's §4.3 conservative
//! prior (prefer the community's owner when it is a candidate).

use bgpworms_core::{FilteringAnalysis, ObservationSet, UpdateObservation};
use bgpworms_types::{Asn, Community, Prefix};
use std::collections::{BTreeMap, BTreeSet};

/// One candidate tagger with its supporting evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggerCandidate {
    /// The candidate AS.
    pub asn: Asn,
    /// Attribution score in (0, 1.5]; higher = more likely.
    pub score: f64,
    /// Number of untagged paths containing this AS whose absence no
    /// stripping edge explains.
    pub unexplained_absences: usize,
    /// Position from the origin (0 = the origin itself), minimized over
    /// tagged paths. Deeper candidates tagged earlier.
    pub distance_from_origin: usize,
}

/// The attribution result for one (prefix, community) pair.
#[derive(Debug, Clone, Default)]
pub struct TaggerAttribution {
    /// The community being attributed.
    pub community: Option<Community>,
    /// The prefix it rides on.
    pub prefix: Option<Prefix>,
    /// Candidates sorted by descending score (ties: closer to origin
    /// first — the conservative direction of §4.3).
    pub candidates: Vec<TaggerCandidate>,
    /// Paths observed carrying the community.
    pub tagged_paths: usize,
    /// Paths observed without it.
    pub untagged_paths: usize,
}

impl TaggerAttribution {
    /// The best candidate, if any.
    pub fn best(&self) -> Option<Asn> {
        self.candidates.first().map(|c| c.asn)
    }

    /// All candidates sharing the maximum score.
    pub fn best_set(&self) -> Vec<Asn> {
        let Some(max) = self.candidates.first().map(|c| c.score) else {
            return Vec::new();
        };
        self.candidates
            .iter()
            .take_while(|c| (c.score - max).abs() < 1e-9)
            .map(|c| c.asn)
            .collect()
    }

    /// True if `asn` is among the top `k` candidates.
    pub fn in_top(&self, asn: Asn, k: usize) -> bool {
        self.candidates.iter().take(k).any(|c| c.asn == asn)
    }
}

/// Attributes `community` on `prefix` across all vantage points in `set`.
///
/// `filters` (when provided) excuses candidate absences on paths where a
/// collector-side AS edge shows filtering indications.
pub fn attribute(
    set: &ObservationSet,
    prefix: Prefix,
    community: Community,
    filters: Option<&FilteringAnalysis>,
) -> TaggerAttribution {
    let announcements: Vec<&UpdateObservation> = set
        .announcements()
        .filter(|o| o.prefix == prefix && !o.path.is_empty())
        .collect();
    attribute_among(&announcements, prefix, community, filters, true)
}

/// Attributes every (prefix, community) pair involving `community` in the
/// set — one attribution per prefix the community was seen on.
pub fn attribute_all(
    set: &ObservationSet,
    community: Community,
    filters: Option<&FilteringAnalysis>,
) -> Vec<TaggerAttribution> {
    let mut prefixes: BTreeSet<Prefix> = BTreeSet::new();
    for obs in set.announcements() {
        if obs.communities.contains(&community) {
            prefixes.insert(obs.prefix);
        }
    }
    prefixes
        .into_iter()
        .map(|p| attribute(set, p, community, filters))
        .collect()
}

/// [`attribute`] over a pre-selected announcement slice (all observations
/// of one prefix) — callers that already hold a per-prefix index avoid the
/// full-set scan.
///
/// `owner_prior` applies the §4.3 conservative boost to the community's
/// owner. It is the right prior for *informational* tags (the owner sets
/// them) and the wrong one for *action* communities, where the tagger is
/// the service **requester** and the owner merely acts — attack detectors
/// pass `false`.
pub fn attribute_among(
    announcements: &[&UpdateObservation],
    prefix: Prefix,
    community: Community,
    filters: Option<&FilteringAnalysis>,
    owner_prior: bool,
) -> TaggerAttribution {
    let tagged: Vec<&&UpdateObservation> = announcements
        .iter()
        .filter(|o| o.communities.contains(&community))
        .collect();
    let untagged: Vec<&&UpdateObservation> = announcements
        .iter()
        .filter(|o| !o.communities.contains(&community))
        .collect();

    let mut result = TaggerAttribution {
        community: Some(community),
        prefix: Some(prefix),
        candidates: Vec::new(),
        tagged_paths: tagged.len(),
        untagged_paths: untagged.len(),
    };
    if tagged.is_empty() {
        return result;
    }

    // Candidate set: ASes present on every tagged path.
    let mut candidates: BTreeSet<Asn> = tagged[0].path.iter().copied().collect();
    for obs in tagged.iter().skip(1) {
        let here: BTreeSet<Asn> = obs.path.iter().copied().collect();
        candidates.retain(|a| here.contains(a));
    }

    // Minimal distance from the origin over tagged paths.
    let mut dist_from_origin: BTreeMap<Asn, usize> = BTreeMap::new();
    for obs in &tagged {
        let len = obs.path.len();
        for (i, &a) in obs.path.iter().enumerate() {
            if candidates.contains(&a) {
                let d = len - 1 - i;
                dist_from_origin
                    .entry(a)
                    .and_modify(|v| *v = (*v).min(d))
                    .or_insert(d);
            }
        }
    }

    // Absence penalties: for each untagged path containing a candidate,
    // check whether a collector-side edge could have stripped the tag.
    let mut unexplained: BTreeMap<Asn, usize> = BTreeMap::new();
    for obs in &untagged {
        for (i, &a) in obs.path.iter().enumerate() {
            if !candidates.contains(&a) {
                continue;
            }
            // Collector-side edges: path[i] -> path[i-1] -> … -> path[0].
            let explained = match filters {
                Some(f) => (1..=i).any(|j| {
                    let from = obs.path[j];
                    let to = obs.path[j - 1];
                    f.edge(from, to).map(|e| e.filtered > 0).unwrap_or(false)
                }),
                None => false,
            };
            if !explained {
                *unexplained.entry(a).or_insert(0) += 1;
            }
        }
    }

    let owner = community.owner();
    let mut scored: Vec<TaggerCandidate> = candidates
        .into_iter()
        .map(|asn| {
            let misses = unexplained.get(&asn).copied().unwrap_or(0);
            let mut score = 1.0 / (1.0 + misses as f64);
            // §4.3 conservative prior: the owner most plausibly tagged its
            // own community.
            if owner_prior && asn == owner {
                score *= 1.5;
            }
            TaggerCandidate {
                asn,
                score,
                unexplained_absences: misses,
                distance_from_origin: dist_from_origin.get(&asn).copied().unwrap_or(usize::MAX),
            }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.distance_from_origin.cmp(&b.distance_from_origin))
            .then(a.asn.cmp(&b.asn))
    });
    result.candidates = scored;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_core::EdgeIndications;

    fn obs(prefix: &str, path: &[u32], comms: &[(u16, u16)]) -> UpdateObservation {
        UpdateObservation {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            time: 0,
            peer: Asn::new(path[0]),
            prefix: prefix.parse().unwrap(),
            path: path.iter().map(|&n| Asn::new(n)).collect(),
            raw_hop_count: path.len(),
            prepends: vec![],
            large_communities: vec![],
            communities: comms.iter().map(|&(a, v)| Community::new(a, v)).collect(),
            is_withdrawal: false,
        }
    }

    fn set(observations: Vec<UpdateObservation>) -> ObservationSet {
        ObservationSet {
            observations,
            messages: vec![("RIS".into(), "rrc00".into(), 1)],
        }
    }

    const P: &str = "10.0.0.0/16";

    #[test]
    fn origin_tag_attributes_to_origin() {
        // Tag on every path → intersection is the common suffix; the origin
        // has no absence penalties and ties break toward the origin.
        let c = (9u16, 42u16);
        let s = set(vec![
            obs(P, &[3, 2, 1], &[c]),
            obs(P, &[4, 2, 1], &[c]),
            obs(P, &[5, 6, 1], &[c]),
        ]);
        let att = attribute(&s, P.parse().unwrap(), Community::new(9, 42), None);
        assert_eq!(att.tagged_paths, 3);
        assert_eq!(att.untagged_paths, 0);
        assert_eq!(
            att.best(),
            Some(Asn::new(1)),
            "only common AS is the origin"
        );
        assert_eq!(att.candidates.len(), 1);
    }

    #[test]
    fn midpath_tagger_identified_by_absence() {
        // AS2 adds the tag: paths through 2 carry it, the path through 6
        // does not. Candidates {2, 1}; 1 is on the untagged path → penalty;
        // 2 is not → best.
        let c = (9u16, 42u16);
        let s = set(vec![
            obs(P, &[3, 2, 1], &[c]),
            obs(P, &[4, 2, 1], &[c]),
            obs(P, &[5, 6, 1], &[]),
        ]);
        let att = attribute(&s, P.parse().unwrap(), Community::new(9, 42), None);
        assert_eq!(att.best(), Some(Asn::new(2)));
        let one = att
            .candidates
            .iter()
            .find(|x| x.asn == Asn::new(1))
            .unwrap();
        assert_eq!(one.unexplained_absences, 1);
    }

    #[test]
    fn owner_prior_breaks_ties() {
        // Tag of AS2 present on all paths; both 2 and 1 are clean
        // candidates, but 2 owns the community.
        let c = (2u16, 666u16);
        let s = set(vec![obs(P, &[3, 2, 1], &[c]), obs(P, &[4, 2, 1], &[c])]);
        let att = attribute(&s, P.parse().unwrap(), Community::new(2, 666), None);
        assert_eq!(att.best(), Some(Asn::new(2)), "owner prior wins");
        assert!(att.candidates[0].score > att.candidates[1].score);
    }

    #[test]
    fn filtering_evidence_excuses_absences() {
        // Same as midpath case, but edge (6 → 5) is a known stripper: the
        // untagged path no longer penalizes AS1, so AS1 (origin side) ties
        // with AS2 and wins the closer-to-origin tie-break.
        let c = (9u16, 42u16);
        let s = set(vec![
            obs(P, &[3, 2, 1], &[c]),
            obs(P, &[4, 2, 1], &[c]),
            obs(P, &[5, 6, 1], &[]),
        ]);
        let mut filters = FilteringAnalysis::default();
        filters.edges.insert(
            (Asn::new(6), Asn::new(5)),
            EdgeIndications {
                forwarded: 0,
                filtered: 10,
            },
        );
        let att = attribute(
            &s,
            P.parse().unwrap(),
            Community::new(9, 42),
            Some(&filters),
        );
        let one = att
            .candidates
            .iter()
            .find(|x| x.asn == Asn::new(1))
            .unwrap();
        assert_eq!(
            one.unexplained_absences, 0,
            "stripping explains the absence"
        );
        assert_eq!(att.best(), Some(Asn::new(1)), "origin-side tie-break");
    }

    #[test]
    fn no_tagged_paths_gives_empty_attribution() {
        let s = set(vec![obs(P, &[3, 2, 1], &[])]);
        let att = attribute(&s, P.parse().unwrap(), Community::new(9, 42), None);
        assert!(att.candidates.is_empty());
        assert_eq!(att.best(), None);
        assert!(att.best_set().is_empty());
    }

    #[test]
    fn attribute_all_covers_every_prefix() {
        let c = (9u16, 42u16);
        let s = set(vec![
            obs("10.0.0.0/16", &[3, 2, 1], &[c]),
            obs("20.0.0.0/16", &[3, 2, 7], &[c]),
            obs("30.0.0.0/16", &[3, 2, 8], &[]),
        ]);
        let all = attribute_all(&s, Community::new(9, 42), None);
        assert_eq!(all.len(), 2);
        let prefixes: Vec<Prefix> = all.iter().filter_map(|a| a.prefix).collect();
        assert!(prefixes.contains(&"10.0.0.0/16".parse().unwrap()));
        assert!(prefixes.contains(&"20.0.0.0/16".parse().unwrap()));
    }

    #[test]
    fn in_top_and_best_set() {
        let c = (9u16, 42u16);
        let s = set(vec![obs(P, &[3, 2, 1], &[c]), obs(P, &[4, 2, 1], &[c])]);
        let att = attribute(&s, P.parse().unwrap(), Community::new(9, 42), None);
        // candidates {2, 1}, equal scores (no absences, no owner on path)
        assert_eq!(att.best_set().len(), 2);
        assert!(att.in_top(Asn::new(1), 2));
        assert!(att.in_top(Asn::new(2), 2));
        assert!(!att.in_top(Asn::new(3), 1) || !att.in_top(Asn::new(3), 2));
    }

    #[test]
    fn distance_from_origin_prefers_deep_candidates_on_tie() {
        // With no penalties anywhere, the origin-most candidate is first
        // (the paper's conservative assumption).
        let c = (9u16, 42u16);
        let s = set(vec![obs(P, &[4, 3, 2, 1], &[c])]);
        let att = attribute(&s, P.parse().unwrap(), Community::new(9, 42), None);
        assert_eq!(att.best(), Some(Asn::new(1)));
        let dists: Vec<usize> = att
            .candidates
            .iter()
            .map(|x| x.distance_from_origin)
            .collect();
        assert_eq!(dists, vec![0, 1, 2, 3]);
    }
}
