//! Labeled attack runs: benign workload + injected community attacks, with
//! ground-truth labels for scoring the passive detectors.
//!
//! The paper's future agenda asks for attack inference from passive
//! measurements and notes that *"identifying an attacker in BGP is not
//! trivial due to the lack of authentication and integrity"*. On the real
//! Internet there is no ground truth to score against; on the simulator
//! there is. A [`LabeledRun`] contains a full generated Internet (including
//! its benign RTBH episodes — the detectors' hardest negatives), a set of
//! [`InjectedAttack`]s covering every §5 scenario, the collector
//! observations the attacks produced, and the ground-truth community
//! dictionary. [`evaluate`] scores any alert list against the labels.

use crate::detectors::{Alert, AlertKind};
use crate::dictionary::CommunityDictionary;
use bgpworms_core::{ArchiveInput, ObservationSet};
use bgpworms_routesim::{
    archive_all, CommunityPropagationPolicy, FeedKind, Origination, Vendor, Workload,
    WorkloadParams,
};
use bgpworms_topology::{
    addressing::AddressingParams, PrefixAllocation, Tier, Topology, TopologyParams,
};
use bgpworms_types::{Asn, Community, Prefix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The attack classes that can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InjectedKind {
    /// Attacker announces a more-specific of the victim's prefix under its
    /// own origin, tagged with the target's blackhole community (Fig 7b).
    RtbhHijack,
    /// Same, but forging the victim's origin ASN (type-1 hijack).
    RtbhForgedOrigin,
    /// On-path attacker adds the target's blackhole community to the
    /// victim's own announcement (Fig 7a).
    RtbhOnPath,
    /// On-path attacker adds the target's prepend community to the
    /// victim's announcement (Fig 2 / Fig 8a).
    SteeringPrepend,
    /// Attacker originates with conflicting route-server announce-to and
    /// suppress communities (Fig 9 / §7.5).
    RsConflict,
}

impl InjectedKind {
    /// All kinds, in injection order.
    pub const ALL: [InjectedKind; 5] = [
        InjectedKind::RtbhHijack,
        InjectedKind::RtbhForgedOrigin,
        InjectedKind::RtbhOnPath,
        InjectedKind::SteeringPrepend,
        InjectedKind::RsConflict,
    ];

    /// Alert kinds that count as detecting this injection.
    pub fn matching_alerts(self) -> &'static [AlertKind] {
        match self {
            // A hijack-with-blackhole is also a third-party trigger; either
            // alarm brings the right operator attention.
            InjectedKind::RtbhHijack | InjectedKind::RtbhForgedOrigin => {
                &[AlertKind::RtbhHijack, AlertKind::RtbhThirdParty]
            }
            InjectedKind::RtbhOnPath => &[AlertKind::RtbhThirdParty, AlertKind::RtbhHijack],
            InjectedKind::SteeringPrepend => &[AlertKind::SteeringAbuse],
            InjectedKind::RsConflict => &[AlertKind::RouteServerConflict],
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InjectedKind::RtbhHijack => "rtbh-hijack",
            InjectedKind::RtbhForgedOrigin => "rtbh-forged-origin",
            InjectedKind::RtbhOnPath => "rtbh-on-path",
            InjectedKind::SteeringPrepend => "steering-prepend",
            InjectedKind::RsConflict => "rs-conflict",
        }
    }
}

impl fmt::Display for InjectedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One injected attack with its ground-truth roles.
#[derive(Debug, Clone)]
pub struct InjectedAttack {
    /// Attack class.
    pub kind: InjectedKind,
    /// The AS performing the manipulation.
    pub attacker: Asn,
    /// The AS whose prefix or traffic is affected.
    pub victim: Asn,
    /// The victim's (covering) prefix.
    pub victim_prefix: Prefix,
    /// The prefix alerts should name (the more-specific for hijacks, the
    /// victim prefix for on-path tagging, the attacker's own prefix for
    /// route-server conflicts).
    pub attack_prefix: Prefix,
    /// The community used.
    pub community: Community,
    /// The community target (service provider / route server).
    pub target: Asn,
}

/// Parameters of a labeled run.
#[derive(Debug, Clone)]
pub struct LabeledRunParams {
    /// Topology generator parameters.
    pub topo: TopologyParams,
    /// Benign workload parameters (includes legitimate RTBH episodes).
    pub workload: WorkloadParams,
    /// Injection RNG seed.
    pub seed: u64,
    /// How many instances of each attack kind to inject (best effort; the
    /// generated topology may not support every slot).
    pub per_kind: usize,
}

impl Default for LabeledRunParams {
    fn default() -> Self {
        LabeledRunParams {
            topo: TopologyParams::small(),
            workload: WorkloadParams::default(),
            seed: 2018,
            per_kind: 3,
        }
    }
}

/// A finished labeled run.
pub struct LabeledRun {
    /// The topology (for relationship-aware detection).
    pub topo: Topology,
    /// Prefix ground truth.
    pub alloc: PrefixAllocation,
    /// Collector observations parsed back from MRT.
    pub observations: ObservationSet,
    /// Ground-truth community semantics.
    pub truth_dict: CommunityDictionary,
    /// The injected attacks.
    pub injections: Vec<InjectedAttack>,
    /// Every community that reached a collector.
    pub observed_communities: BTreeSet<Community>,
}

/// Builds a labeled run: generate, inject, simulate, archive, parse.
pub fn build(params: &LabeledRunParams) -> LabeledRun {
    let topo = params.topo.clone().seed(params.seed).build();
    let alloc = PrefixAllocation::assign(
        &topo,
        AddressingParams {
            seed: params.seed,
            ..AddressingParams::default()
        },
    );
    let mut workload = Workload::generate(&topo, &alloc, &params.workload);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xA77A_C0DE);

    let mut injections = Vec::new();
    let mut used_victims: BTreeSet<Asn> = BTreeSet::new();
    let inject_time = bgpworms_routesim::workload::APRIL_2018 + 27 * 86_400;

    for kind in InjectedKind::ALL {
        for slot in 0..params.per_kind {
            if let Some(attack) =
                plan_attack(kind, &topo, &alloc, &workload, &mut used_victims, &mut rng)
            {
                apply_attack(&attack, &mut workload, inject_time + slot as u32 * 600);
                injections.push(attack);
            }
        }
    }

    let sim = workload.simulation(&topo).compile();
    let result = sim.run(&workload.originations);
    drop(sim);
    let archives = archive_all(&workload.collectors, &result.observations, inject_time)
        .expect("in-memory archiving cannot fail");
    let inputs: Vec<ArchiveInput> = archives
        .into_iter()
        .map(|a| ArchiveInput {
            platform: a.platform,
            collector: a.name,
            mrt: a.updates_mrt,
        })
        .collect();
    let observations = ObservationSet::from_archives(&inputs).expect("simulator MRT parses");

    let truth_dict = CommunityDictionary::from_workload(workload.configs.values());
    let observed_communities: BTreeSet<Community> = observations
        .announcements()
        .flat_map(|o| o.communities.iter().copied())
        .collect();

    LabeledRun {
        topo,
        alloc,
        observations,
        truth_dict,
        injections,
        observed_communities,
    }
}

/// Selects roles for one attack instance, avoiding reused victims so every
/// label names a distinct prefix.
fn plan_attack(
    kind: InjectedKind,
    topo: &Topology,
    alloc: &PrefixAllocation,
    workload: &Workload,
    used_victims: &mut BTreeSet<Asn>,
    rng: &mut StdRng,
) -> Option<InjectedAttack> {
    let mut stubs: Vec<Asn> = topo
        .ases()
        .filter(|n| n.tier == Tier::Stub && !used_victims.contains(&n.asn))
        .map(|n| n.asn)
        .collect();
    stubs.shuffle(rng);

    // Transit ASes offering a blackhole service with value 666 and a u16
    // ASN (community-encodable).
    let blackhole_targets: Vec<Asn> = workload
        .configs
        .values()
        .filter(|c| {
            c.services
                .blackhole
                .as_ref()
                .map(|b| b.value == 666)
                .unwrap_or(false)
                && c.asn.as_u16().is_some()
        })
        .map(|c| c.asn)
        .collect();
    let prepend_targets: Vec<Asn> = workload
        .configs
        .values()
        .filter(|c| !c.services.prepend.is_empty() && c.asn.as_u16().is_some())
        .map(|c| c.asn)
        .collect();

    match kind {
        InjectedKind::RtbhHijack | InjectedKind::RtbhForgedOrigin => {
            let target = *blackhole_targets.first()?;
            let t16 = target.as_u16()?;
            for victim in &stubs {
                let Some(v4) = alloc.prefixes_of(*victim).iter().find_map(|p| p.as_v4()) else {
                    continue;
                };
                if v4.len() > 24 {
                    continue;
                }
                let Ok(subs) = v4.subnets(24) else { continue };
                let Some(&sub) = subs.first() else { continue };
                // A stub attacker that is not the victim and shares no
                // provider with it (so the forged adjacency is truly novel).
                let victim_providers: BTreeSet<Asn> = topo.providers_of(*victim).collect();
                let Some(attacker) = stubs.iter().copied().find(|a| {
                    *a != *victim
                        && topo
                            .providers_of(*a)
                            .all(|p| !victim_providers.contains(&p))
                }) else {
                    continue;
                };
                used_victims.insert(*victim);
                used_victims.insert(attacker);
                return Some(InjectedAttack {
                    kind,
                    attacker,
                    victim: *victim,
                    victim_prefix: Prefix::V4(v4),
                    attack_prefix: Prefix::V4(sub),
                    community: Community::new(t16, 666),
                    target,
                });
            }
            None
        }
        InjectedKind::RtbhOnPath | InjectedKind::SteeringPrepend => {
            let targets = if kind == InjectedKind::RtbhOnPath {
                &blackhole_targets
            } else {
                &prepend_targets
            };
            // Steering abuse is only a *scorable* label when its effect can
            // reach a collector: the target's prepending is visible on the
            // target's own full-feed collector session, provided the target
            // also re-exports the triggering community (ForwardAll, or
            // StripUnknown — the community names the target itself).
            let full_feed_peers: BTreeSet<Asn> = workload
                .collectors
                .iter()
                .flat_map(|c| c.peers.iter())
                .filter(|(_, feed)| *feed == FeedKind::Full)
                .map(|(peer, _)| *peer)
                .collect();
            let visible_steering_target = |t: &Asn| {
                let Some(cfg) = workload.configs.get(t) else {
                    return false;
                };
                full_feed_peers.contains(t)
                    && cfg.sends_communities()
                    && matches!(
                        cfg.propagation,
                        CommunityPropagationPolicy::ForwardAll
                            | CommunityPropagationPolicy::StripUnknown
                    )
            };
            for victim in &stubs {
                let Some(v4) = alloc.prefixes_of(*victim).iter().find_map(|p| p.as_v4()) else {
                    continue;
                };
                // The attacker is one of the victim's providers (on-path by
                // construction); the target is one of the attacker's
                // providers offering the service — the announcement reaches
                // the target over a customer session, so it acts (§7.4).
                // The target must NOT also be a direct provider of the
                // victim: a provider's own community on its customer's
                // route is passively indistinguishable from the customer's
                // request (the paper's authentication gap), so such
                // injections would be undetectable-by-construction labels.
                let victim_providers: BTreeSet<Asn> = topo.providers_of(*victim).collect();
                for attacker in victim_providers.iter().copied() {
                    let usable = |t: &Asn| {
                        targets.contains(t) && *t != attacker && !victim_providers.contains(t)
                    };
                    let target = match kind {
                        InjectedKind::SteeringPrepend => topo
                            .providers_of(attacker)
                            .find(|t| usable(t) && visible_steering_target(t)),
                        _ => topo.providers_of(attacker).find(usable),
                    };
                    let Some(target) = target else { continue };
                    let Some(t16) = target.as_u16() else { continue };
                    let community = if kind == InjectedKind::RtbhOnPath {
                        Community::new(t16, 666)
                    } else {
                        // Prepend ×2 (the workload installs 421/422/423).
                        Community::new(t16, 422)
                    };
                    used_victims.insert(*victim);
                    return Some(InjectedAttack {
                        kind,
                        attacker,
                        victim: *victim,
                        victim_prefix: Prefix::V4(v4),
                        attack_prefix: Prefix::V4(v4),
                        community,
                        target,
                    });
                }
            }
            None
        }
        InjectedKind::RsConflict => {
            // A route server and two of its members: the attacker member
            // originates its own prefix with announce-to(attackee) plus
            // suppress(attackee).
            for node in topo.ases() {
                if node.tier != Tier::RouteServer {
                    continue;
                }
                if node.asn.as_u16().is_none() {
                    continue;
                }
                let members: Vec<Asn> = topo
                    .peers_of(node.asn)
                    .filter(|m| m.as_u16().is_some())
                    .collect();
                if members.len() < 2 {
                    continue;
                }
                let Some(attacker) = members
                    .iter()
                    .copied()
                    .find(|m| !used_victims.contains(m) && !alloc.prefixes_of(*m).is_empty())
                else {
                    continue;
                };
                let Some(attackee) = members.iter().copied().find(|m| *m != attacker) else {
                    continue;
                };
                let Some(a16) = attackee.as_u16() else {
                    continue;
                };
                let Some(own) = alloc.prefixes_of(attacker).first().copied() else {
                    continue;
                };
                used_victims.insert(attacker);
                return Some(InjectedAttack {
                    kind,
                    attacker,
                    victim: attackee,
                    victim_prefix: own,
                    attack_prefix: own,
                    community: Community::new(0, a16),
                    target: node.asn,
                });
            }
            None
        }
    }
}

/// The attacker's injection point cooperates with the attack: like the
/// paper's PEERING vantage (§7.1: "can set arbitrary communities"), it
/// sends communities and forwards everything.
fn make_attacker_cooperative(workload: &mut Workload, attacker: Asn) {
    if let Some(cfg) = workload.configs.get_mut(&attacker) {
        cfg.vendor = Vendor::Juniper;
        cfg.send_community_configured = true;
        cfg.propagation = CommunityPropagationPolicy::ForwardAll;
    }
}

/// Wires one planned attack into the workload.
fn apply_attack(attack: &InjectedAttack, workload: &mut Workload, time: u32) {
    match attack.kind {
        InjectedKind::RtbhHijack => {
            make_attacker_cooperative(workload, attack.attacker);
            // §7.3: the hijack required updating the IRR — circumvention.
            workload.irr.register(attack.attack_prefix, attack.attacker);
            workload.originations.push(
                Origination::announce(
                    attack.attacker,
                    attack.attack_prefix,
                    vec![attack.community],
                )
                .at(time),
            );
        }
        InjectedKind::RtbhForgedOrigin => {
            make_attacker_cooperative(workload, attack.attacker);
            workload.originations.push(
                Origination::announce(
                    attack.attacker,
                    attack.attack_prefix,
                    vec![attack.community],
                )
                .at(time)
                .forging(attack.victim),
            );
        }
        InjectedKind::RtbhOnPath | InjectedKind::SteeringPrepend => {
            // A deliberate on-path tagger configures its router to actually
            // send communities (otherwise the tag would die on its egress).
            make_attacker_cooperative(workload, attack.attacker);
            if let Some(cfg) = workload.configs.get_mut(&attack.attacker) {
                cfg.tagging
                    .targeted_egress
                    .push((attack.attack_prefix, attack.community));
            }
        }
        InjectedKind::RsConflict => {
            make_attacker_cooperative(workload, attack.attacker);
            let a16 = attack.community.value_part();
            let rs16 = attack.target.as_u16().unwrap_or(0);
            workload.originations.push(
                Origination::announce(
                    attack.attacker,
                    attack.attack_prefix,
                    vec![Community::new(rs16, a16), Community::new(0, a16)],
                )
                .at(time),
            );
        }
    }
}

/// Per-kind detection scores.
#[derive(Debug, Clone, Copy, Default)]
pub struct KindEval {
    /// Injections detected by a compatible alert.
    pub detected: usize,
    /// Injections missed.
    pub missed: usize,
    /// Detected injections where the true attacker is in the alert's
    /// suspected set.
    pub attributed: usize,
}

impl KindEval {
    /// Recall of the detectors on this kind.
    pub fn recall(&self) -> f64 {
        let total = self.detected + self.missed;
        if total == 0 {
            1.0
        } else {
            self.detected as f64 / total as f64
        }
    }

    /// Fraction of detections naming the true attacker.
    pub fn attribution(&self) -> f64 {
        if self.detected == 0 {
            1.0
        } else {
            self.attributed as f64 / self.detected as f64
        }
    }
}

/// The full evaluation of an alert list against a labeled run.
#[derive(Debug, Clone, Default)]
pub struct DetectionEval {
    /// Per-injected-kind scores.
    pub per_kind: BTreeMap<&'static str, KindEval>,
    /// Attack-class alerts that match no injection (false alarms; benign
    /// workload RTBH episodes are the usual source).
    pub false_alarms: usize,
    /// Total attack-class alerts considered.
    pub attack_alerts: usize,
}

impl DetectionEval {
    /// Overall recall across kinds.
    pub fn recall(&self) -> f64 {
        let (d, m) = self
            .per_kind
            .values()
            .fold((0, 0), |(d, m), k| (d + k.detected, m + k.missed));
        if d + m == 0 {
            1.0
        } else {
            d as f64 / (d + m) as f64
        }
    }

    /// Precision over attack-class alerts.
    pub fn precision(&self) -> f64 {
        if self.attack_alerts == 0 {
            1.0
        } else {
            (self.attack_alerts - self.false_alarms) as f64 / self.attack_alerts as f64
        }
    }

    /// Overall attribution rate.
    pub fn attribution(&self) -> f64 {
        let (a, d) = self
            .per_kind
            .values()
            .fold((0, 0), |(a, d), k| (a + k.attributed, d + k.detected));
        if d == 0 {
            1.0
        } else {
            a as f64 / d as f64
        }
    }
}

/// The alert kinds considered "attack-class" for precision accounting.
fn is_attack_alert(kind: AlertKind) -> bool {
    matches!(
        kind,
        AlertKind::RtbhHijack
            | AlertKind::RtbhThirdParty
            | AlertKind::SteeringAbuse
            | AlertKind::RouteServerConflict
    )
}

/// Scores `alerts` against the run's labels.
pub fn evaluate(run: &LabeledRun, alerts: &[Alert]) -> DetectionEval {
    let mut eval = DetectionEval::default();
    for kind in InjectedKind::ALL {
        eval.per_kind.insert(kind.label(), KindEval::default());
    }

    let mut matched_alerts: BTreeSet<usize> = BTreeSet::new();
    for injection in &run.injections {
        let compatible = injection.kind.matching_alerts();
        let mut detected = false;
        let mut attributed = false;
        for (i, alert) in alerts.iter().enumerate() {
            if alert.prefix != injection.attack_prefix || !compatible.contains(&alert.kind) {
                continue;
            }
            detected = true;
            matched_alerts.insert(i);
            if alert.suspected.contains(&injection.attacker) {
                attributed = true;
            }
        }
        let k = eval
            .per_kind
            .get_mut(injection.kind.label())
            .expect("all kinds present");
        if detected {
            k.detected += 1;
            if attributed {
                k.attributed += 1;
            }
        } else {
            k.missed += 1;
        }
    }

    for (i, alert) in alerts.iter().enumerate() {
        if !is_attack_alert(alert.kind) {
            continue;
        }
        eval.attack_alerts += 1;
        if !matched_alerts.contains(&i) {
            eval.false_alarms += 1;
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::Monitor;
    use bgpworms_core::FilteringAnalysis;

    fn small_run() -> LabeledRun {
        build(&LabeledRunParams {
            topo: TopologyParams::small(),
            workload: WorkloadParams {
                blackhole_service_prob: 0.8,
                steering_service_prob: 0.7,
                ..WorkloadParams::default()
            },
            seed: 11,
            per_kind: 2,
        })
    }

    #[test]
    fn labeled_run_injects_attacks_and_parses() {
        let run = small_run();
        assert!(
            run.injections.len() >= 5,
            "most attack slots filled: {:?}",
            run.injections.iter().map(|i| i.kind).collect::<Vec<_>>()
        );
        assert!(!run.observations.observations.is_empty());
        assert!(!run.truth_dict.is_empty());
        // Injections name distinct attack prefixes.
        let prefixes: BTreeSet<Prefix> = run.injections.iter().map(|i| i.attack_prefix).collect();
        assert_eq!(prefixes.len(), run.injections.len());
    }

    #[test]
    fn detectors_find_injected_attacks() {
        let run = small_run();
        let filters = FilteringAnalysis::compute(&run.observations);
        let monitor = Monitor::new(&run.observations, &run.truth_dict)
            .with_filters(&filters)
            .with_topology(&run.topo);
        let alerts = monitor.run();
        let eval = evaluate(&run, &alerts);
        assert!(
            eval.recall() >= 0.7,
            "recall {:.2} too low; per-kind {:?}",
            eval.recall(),
            eval.per_kind
        );
        assert!(
            eval.precision() >= 0.7,
            "precision {:.2} too low ({} false alarms of {})",
            eval.precision(),
            eval.false_alarms,
            eval.attack_alerts
        );
        assert!(
            eval.attribution() >= 0.7,
            "attribution {:.2} too low",
            eval.attribution()
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = small_run();
        let b = small_run();
        assert_eq!(a.injections.len(), b.injections.len());
        assert_eq!(
            a.observations.observations.len(),
            b.observations.observations.len()
        );
    }

    #[test]
    fn kind_eval_math() {
        let k = KindEval {
            detected: 3,
            missed: 1,
            attributed: 2,
        };
        assert!((k.recall() - 0.75).abs() < 1e-9);
        assert!((k.attribution() - 2.0 / 3.0).abs() < 1e-9);
        let empty = KindEval::default();
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.attribution(), 1.0);
    }

    #[test]
    fn evaluate_counts_false_alarms() {
        let run = small_run();
        let bogus = Alert {
            kind: AlertKind::RtbhHijack,
            prefix: "203.0.113.0/24".parse().unwrap(),
            community: None,
            suspected: vec![],
            evidence: "made up".into(),
            severity: crate::detectors::Severity::Critical,
        };
        let eval = evaluate(&run, &[bogus]);
        assert_eq!(eval.false_alarms, 1);
        assert_eq!(eval.attack_alerts, 1);
        assert_eq!(eval.precision(), 0.0);
    }
}

/// Ignored diagnostic: dumps per-injection observability and the raised
/// alerts. Run with `cargo test -p bgpworms-monitor debug_missed_attacks --
/// --ignored --nocapture` when tuning detectors.
#[cfg(test)]
mod debug_tests {
    use super::*;
    use crate::detectors::Monitor;
    use bgpworms_core::FilteringAnalysis;

    #[test]
    #[ignore]
    fn debug_missed_attacks() {
        let run = build(&LabeledRunParams {
            topo: TopologyParams::small(),
            workload: WorkloadParams {
                blackhole_service_prob: 0.8,
                steering_service_prob: 0.7,
                ..WorkloadParams::default()
            },
            seed: 11,
            per_kind: 2,
        });
        for inj in &run.injections {
            let obs_n = run
                .observations
                .announcements()
                .filter(|o| o.prefix == inj.attack_prefix)
                .count();
            let tagged_n = run
                .observations
                .announcements()
                .filter(|o| o.prefix == inj.attack_prefix && o.communities.contains(&inj.community))
                .count();
            let cover_n = run
                .observations
                .announcements()
                .filter(|o| o.prefix == inj.victim_prefix)
                .count();
            eprintln!(
                "{:<20} attacker {} victim {} target {} prefix {}  obs {obs_n} tagged {tagged_n} covering-obs {cover_n}",
                inj.kind.label(), inj.attacker, inj.victim, inj.target, inj.attack_prefix
            );
        }
        let filters = FilteringAnalysis::compute(&run.observations);
        let monitor = Monitor::new(&run.observations, &run.truth_dict)
            .with_filters(&filters)
            .with_topology(&run.topo);
        for a in monitor.run() {
            eprintln!("ALERT {a}");
        }
    }
}
