//! Property-based tests for the passive-monitoring pipeline: attribution
//! invariants over random observation sets, score bounds, and hygiene
//! grade monotonicity.

use bgpworms_core::{ObservationSet, UpdateObservation};
use bgpworms_monitor::dictionary::{CommunityDictionary, CommunityKind, KindScore};
use bgpworms_monitor::hygiene::HygieneReport;
use bgpworms_monitor::tagger::attribute;
use bgpworms_types::{Asn, Community, Prefix};
use proptest::prelude::*;
use std::collections::BTreeSet;

const PREFIX: &str = "10.0.0.0/16";

fn obs(path: &[u32], tagged: bool, community: Community) -> UpdateObservation {
    UpdateObservation {
        platform: "RIS".into(),
        collector: "rrc00".into(),
        time: 0,
        peer: Asn::new(path[0]),
        prefix: PREFIX.parse().unwrap(),
        path: path.iter().map(|&n| Asn::new(n)).collect(),
        raw_hop_count: path.len(),
        prepends: vec![],
        communities: if tagged { vec![community] } else { vec![] },
        large_communities: vec![],
        is_withdrawal: false,
    }
}

/// Random non-empty loop-free path of 1..=6 ASes drawn from a small pool.
fn arb_path() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(1u32..30, 1..=6)
        .prop_map(|set| set.into_iter().collect::<Vec<u32>>())
        .prop_shuffle()
}

proptest! {
    #[test]
    fn attribution_candidates_lie_on_every_tagged_path(
        paths in proptest::collection::vec((arb_path(), any::<bool>()), 1..8),
    ) {
        let community = Community::new(99, 42);
        let observations: Vec<UpdateObservation> = paths
            .iter()
            .map(|(p, tagged)| obs(p, *tagged, community))
            .collect();
        let set = ObservationSet { observations, messages: vec![] };
        let att = attribute(&set, PREFIX.parse().unwrap(), community, None);

        let tagged_paths: Vec<&Vec<u32>> = paths
            .iter()
            .filter(|(_, t)| *t)
            .map(|(p, _)| p)
            .collect();
        prop_assert_eq!(att.tagged_paths, tagged_paths.len());
        prop_assert_eq!(att.untagged_paths, paths.len() - tagged_paths.len());

        if tagged_paths.is_empty() {
            prop_assert!(att.candidates.is_empty());
        }
        for cand in &att.candidates {
            // every candidate is on every tagged path
            for p in &tagged_paths {
                prop_assert!(
                    p.contains(&cand.asn.get()),
                    "candidate {} absent from a tagged path {:?}",
                    cand.asn,
                    p
                );
            }
            // scores bounded by the owner-boosted maximum
            prop_assert!(cand.score > 0.0 && cand.score <= 1.5 + 1e-9);
        }
        // candidates are sorted by descending score
        prop_assert!(att
            .candidates
            .windows(2)
            .all(|w| w[0].score >= w[1].score - 1e-12));
        // the best set shares the maximum score
        let best = att.best_set();
        if let Some(first) = att.candidates.first() {
            prop_assert!(best.contains(&first.asn));
        }
    }

    #[test]
    fn kind_score_bounds(tp in 0usize..50, fp in 0usize..50, fn_ in 0usize..50) {
        let s = KindScore {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
        };
        prop_assert!((0.0..=1.0).contains(&s.precision()));
        prop_assert!((0.0..=1.0).contains(&s.recall()));
        prop_assert!((0.0..=1.0).contains(&s.f1()));
        // F1 never exceeds the larger of precision/recall (harmonic mean)
        let (p, r) = (s.precision(), s.recall());
        prop_assert!(s.f1() <= p.max(r) + 1e-9);
    }

    #[test]
    fn hygiene_grades_are_complete_and_reserved_owners_excluded(
        paths in proptest::collection::vec(arb_path(), 1..10),
        owners in proptest::collection::vec(1u16..200, 1..10),
    ) {
        let mut dict = CommunityDictionary::new();
        let mut observations = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            let owner = owners[i % owners.len()];
            dict.insert(Community::new(owner, 666), CommunityKind::Blackhole);
            observations.push(obs(p, true, Community::new(owner, 666)));
            // sprinkle a reserved-owner community too
            observations.push(obs(p, true, Community::new(65_535, 666)));
        }
        let set = ObservationSet { observations, messages: vec![] };
        let report = HygieneReport::compute(&set, &dict, 3);
        // graded set matches per-AS keys and excludes reserved owners
        let graded: usize = report.grade_counts().values().sum();
        prop_assert_eq!(graded, report.per_as.len());
        prop_assert!(report.per_as.keys().all(|a| a.get() != 65_535 && !a.is_private()));
        // announcement counter matches input
        prop_assert_eq!(report.announcements as usize, paths.len() * 2);
    }

    #[test]
    fn attribution_owner_prior_never_changes_candidate_set(
        paths in proptest::collection::vec((arb_path(), any::<bool>()), 1..6),
    ) {
        // The prior reweights, it must not add or remove candidates.
        let community = Community::new(7, 666);
        let observations: Vec<UpdateObservation> = paths
            .iter()
            .map(|(p, tagged)| obs(p, *tagged, community))
            .collect();
        let set = ObservationSet { observations, messages: vec![] };
        let announcements: Vec<&UpdateObservation> =
            set.announcements().collect();
        let prefix: Prefix = PREFIX.parse().unwrap();
        let with_prior = bgpworms_monitor::tagger::attribute_among(
            &announcements, prefix, community, None, true,
        );
        let without_prior = bgpworms_monitor::tagger::attribute_among(
            &announcements, prefix, community, None, false,
        );
        let a: BTreeSet<Asn> = with_prior.candidates.iter().map(|c| c.asn).collect();
        let b: BTreeSet<Asn> = without_prior.candidates.iter().map(|c| c.asn).collect();
        prop_assert_eq!(a, b);
    }
}
