//! Ablations of the design choices DESIGN.md calls out: which modelled
//! rules are load-bearing for the paper's findings?
//!
//! * **RTBH preference raise** — the Cisco white paper recommends raising
//!   local-pref for accepted blackhole routes; §7.3 finds blackhole routes
//!   "generally preferred even when the attacking AS path is longer".
//!   Removing the raise must flip the longer-path attack outcome.
//! * **NANOG mis-ordered validation** (§6.3) — checking the blackhole
//!   community before origin validation accepts blackhole-tagged hijacks;
//!   fixing the order must block them.

use crate::scenarios::rtbh::RtbhScenario;
use bgpworms_routesim::{CommunityPropagationPolicy, OriginValidation};

/// One ablation outcome: configuration label and whether the attack
/// succeeded.
#[derive(Debug, Clone)]
pub struct AblationOutcome {
    /// What was toggled.
    pub label: &'static str,
    /// Attack success under this configuration.
    pub succeeded: bool,
}

/// The RTBH-preference ablation: the attack path is one hop longer than the
/// victim's direct announcement, so without the local-pref raise ordinary
/// best-path selection keeps the legitimate route.
pub fn rtbh_preference() -> Vec<AblationOutcome> {
    let base = RtbhScenario {
        hijack: true,
        intermediate: Some(CommunityPropagationPolicy::ForwardAll),
        ..RtbhScenario::default()
    };
    let with_raise = base.clone().run();
    let without_raise = RtbhScenario {
        // An ordinary customer-route preference: the blackhole route has to
        // win best-path selection on its own merits — and cannot, being a
        // hop longer.
        blackhole_local_pref: Some(120),
        ..base
    }
    .run();
    vec![
        AblationOutcome {
            label: "blackhole local-pref raised to 200 (recommended config)",
            succeeded: with_raise.succeeded(),
        },
        AblationOutcome {
            label: "blackhole local-pref left at customer default (120)",
            succeeded: without_raise.succeeded(),
        },
    ]
}

/// The §8 defense evaluation: "an AS only propagates communities which are
/// useful to the receiving peer".
///
/// The evaluation exposes exactly what the defense buys and what it does
/// not. A community addressed to the *next hop* always passes — the
/// defended AS cannot tell an attacker's injected `T:666` from its own
/// customer legitimately requesting `T`'s service, because communities
/// carry no authentication (§3.2). So the defense does not eliminate
/// remote triggering; it shrinks the attack radius to the target's direct
/// periphery: any community that must cross a defended AS *toward a
/// non-owner* dies there.
pub fn scoped_defense() -> Vec<AblationOutcome> {
    use bgpworms_routesim::router::blackhole_community_of;
    use bgpworms_routesim::{BlackholeService, Origination, RetainRoutes, RouterConfig, SimSpec};
    use bgpworms_topology::{EdgeKind, Tier, Topology};
    use bgpworms_types::{Asn, Prefix};

    // Chain: victim 1 ← attacker 2 ← mid 3 ← mid 4 ← target 5 (providers
    // rightward). The attacker tags the victim's announcement with the
    // target's blackhole community; the tag must cross 3 and 4 to act.
    let build = |mid3_defended: bool, mid4_defended: bool| -> bool {
        let mut topo = Topology::new();
        for (asn, tier) in [
            (1u32, Tier::Stub),
            (2, Tier::Transit),
            (3, Tier::Transit),
            (4, Tier::Transit),
            (5, Tier::Transit),
        ] {
            topo.add_simple(Asn::new(asn), tier);
        }
        topo.add_edge(Asn::new(2), Asn::new(1), EdgeKind::ProviderToCustomer);
        topo.add_edge(Asn::new(3), Asn::new(2), EdgeKind::ProviderToCustomer);
        topo.add_edge(Asn::new(4), Asn::new(3), EdgeKind::ProviderToCustomer);
        topo.add_edge(Asn::new(5), Asn::new(4), EdgeKind::ProviderToCustomer);

        let target_community = blackhole_community_of(Asn::new(5)).expect("small ASN");

        let mut attacker = RouterConfig::defaults(Asn::new(2));
        attacker.tagging.egress_tags = vec![target_community];
        let mut target = RouterConfig::defaults(Asn::new(5));
        target.services.blackhole = Some(BlackholeService::default());
        let mut spec = SimSpec::new(&topo)
            .retain(RetainRoutes::All)
            .configure(attacker)
            .configure(target);
        if mid3_defended {
            let mut mid = RouterConfig::defaults(Asn::new(3));
            mid.propagation = CommunityPropagationPolicy::ScopedToReceiver;
            spec = spec.configure(mid);
        }
        if mid4_defended {
            let mut mid = RouterConfig::defaults(Asn::new(4));
            mid.propagation = CommunityPropagationPolicy::ScopedToReceiver;
            spec = spec.configure(mid);
        }

        let p: Prefix = "10.10.0.0/24".parse().expect("valid");
        let result = spec
            .compile()
            .run(&[Origination::announce(Asn::new(1), p, vec![])]);
        result
            .route_at(Asn::new(5), &p)
            .map(|r| r.blackholed)
            .unwrap_or(false)
    };

    vec![
        AblationOutcome {
            label: "no defense on the path (baseline)",
            succeeded: build(false, false),
        },
        AblationOutcome {
            label: "defense at the hop adjacent to the target (AS4): the tag is \
                    addressed to its neighbor, indistinguishable from a \
                    legitimate request — passes",
            succeeded: build(false, true),
        },
        AblationOutcome {
            label: "defense at a mid-path hop (AS3): the tag must cross toward a \
                    non-owner — stripped",
            succeeded: build(true, false),
        },
    ]
}

/// The §6.3 validation-order ablation: a blackhole-tagged hijack against an
/// IRR-validating target, with the route-map ordering toggled.
pub fn validation_order() -> Vec<AblationOutcome> {
    let misordered = RtbhScenario {
        hijack: true,
        validation: OriginValidation::Irr {
            validate_after_blackhole: true,
        },
        ..RtbhScenario::default()
    }
    .run();
    let correct = RtbhScenario {
        hijack: true,
        validation: OriginValidation::Irr {
            validate_after_blackhole: false,
        },
        ..RtbhScenario::default()
    }
    .run();
    vec![
        AblationOutcome {
            label: "blackhole checked before validation (NANOG-tutorial bug)",
            succeeded: misordered.succeeded(),
        },
        AblationOutcome {
            label: "validation before blackhole (correct order)",
            succeeded: correct.succeeded(),
        },
    ]
}

/// Renders ablation outcomes.
pub fn render(title: &str, outcomes: &[AblationOutcome]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for o in outcomes {
        let _ = writeln!(
            out,
            "  [{}] {}",
            if o.succeeded {
                "attack succeeds"
            } else {
                "attack blocked"
            },
            o.label
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_raise_is_load_bearing() {
        let outcomes = rtbh_preference();
        assert!(
            outcomes[0].succeeded,
            "recommended config enables the attack"
        );
        assert!(
            !outcomes[1].succeeded,
            "without the raise, the longer attack path loses best-path selection"
        );
    }

    #[test]
    fn scoped_defense_shrinks_the_attack_radius() {
        let outcomes = scoped_defense();
        assert!(outcomes[0].succeeded, "baseline attack works");
        assert!(
            outcomes[1].succeeded,
            "adjacent-hop defense cannot authenticate the requester — the \
             paper's §8 'need for communities authentication'"
        );
        assert!(
            !outcomes[2].succeeded,
            "a mid-path defended hop strips the community toward a non-owner"
        );
    }

    #[test]
    fn validation_order_is_load_bearing() {
        let outcomes = validation_order();
        assert!(
            outcomes[0].succeeded,
            "mis-ordered route-map accepts the blackhole-tagged hijack"
        );
        assert!(
            !outcomes[1].succeeded,
            "correct ordering validates (and rejects) before blackholing"
        );
    }

    #[test]
    fn render_lists_every_outcome() {
        let text = render("rtbh preference", &rtbh_preference());
        assert!(text.contains("attack succeeds"));
        assert!(text.contains("attack blocked"));
        assert_eq!(text.lines().count(), 3);
    }
}
