//! Necessary and sufficient condition checks from §5.4.
//!
//! *Necessary:* communities must propagate beyond a single AS along the
//! path from the attacker to the community target, and the target's
//! community service must be known. *Sufficient:* the attacker must be
//! able to advertise prefixes with the chosen communities (or hijack
//! community-tagged prefixes), with propagation holding on every AS along
//! the way.
//!
//! The propagation check mirrors the paper's own method (§7.2): announce a
//! prefix tagged with a *benign* community — high bits the attacker's ASN,
//! low bits a value not seen in the wild — and observe whether it arrives
//! at the target.

use bgpworms_routesim::{Origination, RetainRoutes, RouterConfig, SimSpec};
use bgpworms_topology::Topology;
use bgpworms_types::{Asn, Community, Prefix};
use std::collections::BTreeMap;

/// The benign low-16 value used for propagation probes (not a service
/// value in any generated workload).
pub const BENIGN_VALUE: u16 = 54_321;

/// A probe prefix reserved for condition checks.
pub fn probe_prefix() -> Prefix {
    "192.0.2.0/24".parse().expect("valid")
}

/// Results of the condition checks for one (attacker, target) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionReport {
    /// The attacker.
    pub attacker: Asn,
    /// The community target.
    pub target: Asn,
    /// Necessary: a benign community from the attacker reaches the target.
    pub community_propagates: bool,
    /// Necessary: the target offers at least one community service.
    pub service_known: bool,
    /// Sufficient: the attacker's router is configured to send communities.
    pub can_advertise_tagged: bool,
    /// Sufficient (hijack variants): an origin-hijacked announcement of
    /// `victim_prefix` is accepted at the target. `None` when not checked.
    pub hijack_accepted: Option<bool>,
}

impl ConditionReport {
    /// Necessary conditions hold.
    pub fn necessary(&self) -> bool {
        self.community_propagates && self.service_known
    }

    /// Sufficient conditions hold for the non-hijack attack.
    pub fn sufficient_tagging(&self) -> bool {
        self.necessary() && self.can_advertise_tagged
    }

    /// Sufficient conditions hold for the hijack attack.
    pub fn sufficient_hijack(&self) -> bool {
        self.sufficient_tagging() && self.hijack_accepted == Some(true)
    }
}

/// Runs the condition checks on a configured topology.
///
/// `victim_prefix` enables the hijack check: the attacker announces it
/// with a forged origin-free path and we test acceptance at the target.
pub fn check_conditions(
    topo: &Topology,
    configs: &BTreeMap<Asn, RouterConfig>,
    irr: &bgpworms_routesim::IrrDatabase,
    rpki: &bgpworms_routesim::IrrDatabase,
    attacker: Asn,
    target: Asn,
    victim_prefix: Option<Prefix>,
) -> ConditionReport {
    let attacker_cfg = configs
        .get(&attacker)
        .cloned()
        .unwrap_or_else(|| RouterConfig::defaults(attacker));
    let target_cfg = configs
        .get(&target)
        .cloned()
        .unwrap_or_else(|| RouterConfig::defaults(target));

    let can_advertise_tagged = attacker_cfg.sends_communities();
    let service_known = target_cfg.services.any()
        || topo
            .node(target)
            .map(|n| n.tier == bgpworms_topology::Tier::RouteServer)
            .unwrap_or(false);

    // Propagation probe (§7.2 style).
    let benign = attacker
        .as_u16()
        .map(|hi| Community::new(hi, BENIGN_VALUE))
        .unwrap_or_else(|| Community::new(65_000, BENIGN_VALUE));
    // The spec borrows configs and registries; only the probe registration
    // below clones the (small) registries, never the config map.
    let sim = SimSpec::new(topo)
        .configs(configs)
        .irr(irr)
        .rpki(rpki)
        .retain(RetainRoutes::All)
        // Register the probe prefix so validation along the way passes —
        // the probe tests community propagation, not hijackability.
        .register_irr(probe_prefix(), attacker)
        .register_rpki(probe_prefix(), attacker)
        .compile();
    let res = sim.run(&[Origination::announce(
        attacker,
        probe_prefix(),
        vec![benign],
    )]);
    let community_propagates = res
        .route_at(target, &probe_prefix())
        .map(|r| r.has_community(benign))
        .unwrap_or(false);

    // Hijack probe: a pure borrow — nothing is cloned to compile this one.
    let hijack_accepted = victim_prefix.map(|p| {
        let sim = SimSpec::new(topo)
            .configs(configs)
            .irr(irr)
            .rpki(rpki)
            .retain(RetainRoutes::All)
            .compile();
        let res = sim.run(&[Origination::announce(attacker, p, vec![])]);
        res.route_at(target, &p)
            .map(|r| r.path.contains(attacker))
            .unwrap_or(false)
    });

    ConditionReport {
        attacker,
        target,
        community_propagates,
        service_known,
        can_advertise_tagged,
        hijack_accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_routesim::{
        BlackholeService, CommunityPropagationPolicy, IrrDatabase, OriginValidation,
    };
    use bgpworms_topology::{EdgeKind, Tier};

    /// 1 (attacker) —cust-of→ 2 (middle) —cust-of→ 3 (target w/ RTBH).
    fn chain(middle_policy: CommunityPropagationPolicy) -> (Topology, BTreeMap<Asn, RouterConfig>) {
        let mut topo = Topology::new();
        topo.add_simple(Asn::new(1), Tier::Stub);
        topo.add_simple(Asn::new(2), Tier::Transit);
        topo.add_simple(Asn::new(3), Tier::Transit);
        topo.add_edge(Asn::new(2), Asn::new(1), EdgeKind::ProviderToCustomer);
        topo.add_edge(Asn::new(3), Asn::new(2), EdgeKind::ProviderToCustomer);
        let mut configs = BTreeMap::new();
        let mut mid = RouterConfig::defaults(Asn::new(2));
        mid.propagation = middle_policy;
        configs.insert(Asn::new(2), mid);
        let mut target = RouterConfig::defaults(Asn::new(3));
        target.services.blackhole = Some(BlackholeService::default());
        configs.insert(Asn::new(3), target);
        (topo, configs)
    }

    #[test]
    fn necessary_conditions_hold_on_forwarding_chain() {
        let (topo, configs) = chain(CommunityPropagationPolicy::ForwardAll);
        let report = check_conditions(
            &topo,
            &configs,
            &IrrDatabase::new(),
            &IrrDatabase::new(),
            Asn::new(1),
            Asn::new(3),
            None,
        );
        assert!(report.community_propagates);
        assert!(report.service_known);
        assert!(report.necessary());
        assert!(report.sufficient_tagging());
        assert_eq!(report.hijack_accepted, None);
    }

    #[test]
    fn stripping_middle_breaks_necessary_condition() {
        let (topo, configs) = chain(CommunityPropagationPolicy::StripAll);
        let report = check_conditions(
            &topo,
            &configs,
            &IrrDatabase::new(),
            &IrrDatabase::new(),
            Asn::new(1),
            Asn::new(3),
            None,
        );
        assert!(!report.community_propagates);
        assert!(!report.necessary());
    }

    #[test]
    fn hijack_probe_respects_validation() {
        let (topo, mut configs) = chain(CommunityPropagationPolicy::ForwardAll);
        let victim: Prefix = "10.99.0.0/16".parse().unwrap();
        let mut irr = IrrDatabase::new();
        let mut rpki = IrrDatabase::new();
        irr.register(victim, Asn::new(77));
        rpki.register(victim, Asn::new(77));

        // Without validation anywhere, the hijack lands.
        let report = check_conditions(
            &topo,
            &configs,
            &irr,
            &rpki,
            Asn::new(1),
            Asn::new(3),
            Some(victim),
        );
        assert_eq!(report.hijack_accepted, Some(true));
        assert!(report.sufficient_hijack());

        // Turn on validation at the target.
        configs.get_mut(&Asn::new(3)).unwrap().validation = OriginValidation::Irr {
            validate_after_blackhole: false,
        };
        let report = check_conditions(
            &topo,
            &configs,
            &irr,
            &rpki,
            Asn::new(1),
            Asn::new(3),
            Some(victim),
        );
        assert_eq!(report.hijack_accepted, Some(false));
        assert!(!report.sufficient_hijack());
    }

    #[test]
    fn no_service_means_no_necessary_condition() {
        let (topo, mut configs) = chain(CommunityPropagationPolicy::ForwardAll);
        configs.get_mut(&Asn::new(3)).unwrap().services = Default::default();
        let report = check_conditions(
            &topo,
            &configs,
            &IrrDatabase::new(),
            &IrrDatabase::new(),
            Asn::new(1),
            Asn::new(3),
            None,
        );
        assert!(!report.service_known);
        assert!(!report.necessary());
    }
}
