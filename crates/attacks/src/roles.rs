//! The three-party terminology of §3.3.

use bgpworms_types::Asn;
use std::fmt;

/// Who is who in a community-based attack (§3.3): the *attacker*
/// manipulates the community attribute (or hijacks), the *attackee*'s
/// prefix/traffic is affected, and the *community target* is the AS whose
/// community service gets triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackRoles {
    /// The AS manipulating communities or injecting hijacks.
    pub attacker: Asn,
    /// The AS whose prefix or traffic is affected.
    pub attackee: Asn,
    /// The AS whose community service is (ab)used — also called the
    /// community provider.
    pub community_target: Asn,
}

impl fmt::Display for AttackRoles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attacker={} attackee={} target={}",
            self.attacker, self.attackee, self.community_target
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_all_roles() {
        let roles = AttackRoles {
            attacker: Asn::new(2),
            attackee: Asn::new(1),
            community_target: Asn::new(3),
        };
        let s = roles.to_string();
        assert!(s.contains("attacker=AS2"));
        assert!(s.contains("attackee=AS1"));
        assert!(s.contains("target=AS3"));
    }
}
