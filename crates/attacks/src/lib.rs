//! Attack scenarios, lab feasibility, in-the-wild experiments, and the
//! Table 3 difficulty assessment — §§3, 5, 6, 7 of the paper.
//!
//! (`ARCHITECTURE.md` at the repository root shows how these experiments
//! consume the engine's session, campaign, and snapshot/delta layers.)
//!
//! Everything here runs on the `bgpworms-routesim` substrate:
//!
//! * [`scenarios`] — the paper's canonical attack topologies, each built,
//!   run baseline-vs-attack, and validated on both planes: the Fig 2
//!   prepend teaser, Fig 7 remotely triggered blackholing (± hijack),
//!   Fig 8 traffic steering (prepend and local-pref), and Fig 9 route
//!   manipulation at an IXP route server;
//! * [`conditions`] — the necessary/sufficient condition checks of §5.4
//!   (community propagation along the attack path; ability to advertise
//!   tagged/hijacked prefixes);
//! * [`lab`] — the §6 vendor behaviour matrix (defaults, community-add
//!   limits, RTBH preference, mis-ordered validation);
//! * [`wild`] — the §7 experiment harness over full generated Internets:
//!   benign-community propagation checking, the RTBH / steering / route-
//!   server experiments, the §7.6 automated blackhole-community survey,
//!   and the future-work surveys of [`wild::extended_survey`] (the
//!   "likely" corpus, non-RTBH path-change inference, §7.7 fake-location
//!   injection);
//! * [`feasibility`] — sweeps scenario variants over policy grids to
//!   regenerate Table 3;
//! * [`ablation`] — proofs that the modelled rules (RTBH preference raise,
//!   §6.3 validation order, the §8 scoped-propagation defense) are
//!   load-bearing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod conditions;
pub mod feasibility;
pub mod lab;
pub mod roles;
pub mod scenarios;
pub mod wild;

pub use conditions::{check_conditions, ConditionReport};
pub use feasibility::{assess_all, Difficulty, FeasibilityRow};
pub use roles::AttackRoles;
pub use scenarios::{ScenarioOutcome, ScenarioReport};
