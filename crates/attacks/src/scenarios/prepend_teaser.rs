//! The motivating example of §3.1 / Fig 2: remote abuse of a prepend
//! community service by an AS further down the announcement path.
//!
//! ```text
//!            AS6  (traffic source; customer of AS3 and AS5)
//!           /   \
//!        AS3     AS5        AS3 offers prepending via AS3:10n
//!           \   /
//!            AS4            (peers with AS3 and AS5)
//!             |
//!            AS2  (attacker; customer of AS4)
//!             |
//!            AS1  (origin of p; customer of AS2)
//! ```
//!
//! Baseline: AS6 sees equal-length paths via AS3 and AS5 and (by
//! deterministic tie-break) routes via AS3. The attacker AS2 tags the
//! announcement with `AS3:103` ("prepend ×3"); if AS4 forwards the foreign
//! community, AS3 prepends itself three times and AS6's traffic shifts to
//! AS5 — the malicious-interceptor / cost-imposition motivations of §3.1.

use crate::roles::AttackRoles;
use crate::scenarios::{ScenarioOutcome, ScenarioReport};
use bgpworms_dataplane::{trace, Fib};
use bgpworms_routesim::{
    ActScope, CommunityPropagationPolicy, Origination, RetainRoutes, RouterConfig, SimSpec,
};
use bgpworms_topology::{EdgeKind, Tier, Topology};
use bgpworms_types::{Asn, Community, Prefix};

/// Origin of p.
pub const ORIGIN: Asn = Asn::new(1);
/// The attacker.
pub const ATTACKER: Asn = Asn::new(2);
/// The prepend-service provider (community target).
pub const TARGET: Asn = Asn::new(3);
/// The transit AS between attacker and target (attackee candidate).
pub const TRANSIT: Asn = Asn::new(4);
/// The alternate path (possibly a malicious interceptor).
pub const INTERCEPTOR: Asn = Asn::new(5);
/// The remote traffic source whose routing is flipped.
pub const SOURCE: Asn = Asn::new(6);

/// Scenario knobs.
#[derive(Debug, Clone)]
pub struct PrependTeaser {
    /// Does the intermediate AS4 forward foreign communities?
    pub transit_forwards_communities: bool,
    /// Scope of AS3's steering service (the paper's lab uses Any; in the
    /// wild providers usually restrict to customers, §7.4).
    pub target_scope: ActScope,
    /// How many prepends the attacker requests (community `AS3:10n`).
    pub prepends: u8,
}

impl Default for PrependTeaser {
    fn default() -> Self {
        PrependTeaser {
            transit_forwards_communities: true,
            target_scope: ActScope::Any,
            prepends: 3,
        }
    }
}

impl PrependTeaser {
    /// The contested prefix.
    pub fn prefix() -> Prefix {
        "10.20.0.0/16".parse().expect("valid prefix")
    }

    fn build(&self) -> Topology {
        let mut topo = Topology::new();
        topo.add_simple(ORIGIN, Tier::Stub);
        topo.add_simple(ATTACKER, Tier::Transit);
        topo.add_simple(TRANSIT, Tier::Transit);
        topo.add_simple(TARGET, Tier::Transit);
        topo.add_simple(INTERCEPTOR, Tier::Transit);
        topo.add_simple(SOURCE, Tier::Stub);
        topo.add_edge(ATTACKER, ORIGIN, EdgeKind::ProviderToCustomer);
        topo.add_edge(TRANSIT, ATTACKER, EdgeKind::ProviderToCustomer);
        topo.add_edge(TRANSIT, TARGET, EdgeKind::PeerToPeer);
        topo.add_edge(TRANSIT, INTERCEPTOR, EdgeKind::PeerToPeer);
        topo.add_edge(TARGET, SOURCE, EdgeKind::ProviderToCustomer);
        topo.add_edge(INTERCEPTOR, SOURCE, EdgeKind::ProviderToCustomer);
        topo
    }

    /// Runs baseline vs. attack.
    pub fn run(&self) -> ScenarioReport {
        let topo = self.build();
        let p = Self::prefix();
        let host = u32::from(
            "10.20.0.1"
                .parse::<std::net::Ipv4Addr>()
                .expect("valid host"),
        );
        let prepend_value = 100 + u16::from(self.prepends);
        let prepend_community = Community::new(TARGET.as_u16().expect("small ASN"), prepend_value);

        let mut target_cfg = RouterConfig::defaults(TARGET);
        target_cfg
            .services
            .prepend
            .extend([(101u16, 1u8), (102, 2), (103, 3)]);
        target_cfg.services.steering_scope = self.target_scope;

        let mut transit_cfg = RouterConfig::defaults(TRANSIT);
        transit_cfg.propagation = if self.transit_forwards_communities {
            CommunityPropagationPolicy::ForwardAll
        } else {
            CommunityPropagationPolicy::StripAll
        };

        let spec = SimSpec::new(&topo)
            .retain(RetainRoutes::All)
            .configure(target_cfg)
            .configure(transit_cfg);

        // Baseline run.
        let baseline = spec
            .clone()
            .compile()
            .run(&[Origination::announce(ORIGIN, p, vec![])]);
        let base_fib = Fib::from_sim(&baseline);
        let base_trace = trace(&base_fib, SOURCE, host);

        // Attack: AS2 adds AS3's prepend community on egress (a config
        // lever, so the armed world compiles from a spec clone).
        let mut attacker_cfg = RouterConfig::defaults(ATTACKER);
        attacker_cfg.tagging.egress_tags = vec![prepend_community];
        let attacked = spec
            .configure(attacker_cfg)
            .compile()
            .run(&[Origination::announce(ORIGIN, p, vec![])]);
        let attack_fib = Fib::from_sim(&attacked);
        let attack_trace = trace(&attack_fib, SOURCE, host);

        let base_next = base_trace.path.get(1).copied();
        let attack_next = attack_trace.path.get(1).copied();
        let shifted = base_next == Some(TARGET) && attack_next == Some(INTERCEPTOR);
        let delivered = attack_trace.delivered();

        let target_export_len = attacked
            .route_at(SOURCE, &p)
            .map(|r| r.path.hop_count())
            .unwrap_or(0);

        ScenarioReport {
            name: "steering/prepend-teaser".into(),
            roles: AttackRoles {
                attacker: ATTACKER,
                attackee: TRANSIT,
                community_target: TARGET,
            },
            outcome: if shifted && delivered {
                ScenarioOutcome::Success
            } else {
                ScenarioOutcome::Blocked
            },
            evidence: vec![
                format!(
                    "baseline: {SOURCE} routes via {:?}, path {:?}",
                    base_next, base_trace.path
                ),
                format!(
                    "attack:   {SOURCE} routes via {:?}, path {:?}",
                    attack_next, attack_trace.path
                ),
                format!("best-path length at {SOURCE} after attack: {target_export_len}"),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_shifts_source_to_interceptor() {
        let report = PrependTeaser::default().run();
        assert!(report.succeeded(), "{report}");
    }

    #[test]
    fn stripping_transit_blocks_the_attack() {
        let report = PrependTeaser {
            transit_forwards_communities: false,
            ..PrependTeaser::default()
        }
        .run();
        assert!(!report.succeeded(), "{report}");
    }

    #[test]
    fn customers_only_scope_ignores_peer_announcement() {
        // AS3 learns the tagged route from its *peer* AS4; a customers-only
        // steering scope must ignore the community (§7.4's impediment).
        let report = PrependTeaser {
            target_scope: ActScope::CustomersOnly,
            ..PrependTeaser::default()
        }
        .run();
        assert!(!report.succeeded(), "{report}");
    }

    #[test]
    fn single_prepend_is_not_enough_to_flip() {
        // With one prepend the AS3 path is 5 vs 4 — still longer, so the
        // flip *does* happen; but with zero… use prepends beyond the
        // service table to check no-op: value 104 is not a service.
        let report = PrependTeaser {
            prepends: 4, // community AS3:104 — not offered
            ..PrependTeaser::default()
        }
        .run();
        assert!(!report.succeeded(), "unknown community value is inert");
    }
}
