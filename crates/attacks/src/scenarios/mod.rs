//! The paper's canonical attack scenarios, each as a self-contained
//! topology + baseline run + attack run + validation.

pub mod prepend_teaser;
pub mod route_manipulation;
pub mod rtbh;
pub mod steering;

use crate::roles::AttackRoles;
use std::fmt;

/// What happened when the scenario ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioOutcome {
    /// The attack achieved its goal.
    Success,
    /// The attack was blocked (by policy, validation, or scope rules).
    Blocked,
}

impl ScenarioOutcome {
    /// True on success.
    pub fn succeeded(self) -> bool {
        self == ScenarioOutcome::Success
    }
}

/// A uniform report every scenario produces.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (e.g. `rtbh/no-hijack`).
    pub name: String,
    /// Who played which role.
    pub roles: AttackRoles,
    /// Attack outcome.
    pub outcome: ScenarioOutcome,
    /// Human-readable evidence: looking-glass lines, traces, path changes.
    pub evidence: Vec<String>,
}

impl ScenarioReport {
    /// True on success.
    pub fn succeeded(&self) -> bool {
        self.outcome.succeeded()
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} — {}",
            self.name,
            self.roles,
            match self.outcome {
                ScenarioOutcome::Success => "ATTACK SUCCEEDED",
                ScenarioOutcome::Blocked => "attack blocked",
            }
        )?;
        for line in &self.evidence {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_types::Asn;

    #[test]
    fn report_display() {
        let report = ScenarioReport {
            name: "rtbh/no-hijack".into(),
            roles: AttackRoles {
                attacker: Asn::new(2),
                attackee: Asn::new(1),
                community_target: Asn::new(3),
            },
            outcome: ScenarioOutcome::Success,
            evidence: vec!["next-hop moved to Null0".into()],
        };
        let text = report.to_string();
        assert!(text.contains("ATTACK SUCCEEDED"));
        assert!(text.contains("Null0"));
        assert!(report.succeeded());
        assert!(!ScenarioOutcome::Blocked.succeeded());
    }
}
