//! Route manipulation at an IXP route server — Fig 9 / §5.3 / §7.5.
//!
//! The route server offers control communities: `RS:peer` = announce to
//! that member, `0:peer` = do not announce to that member. Conflicting
//! communities expose the server's evaluation order; with suppress-first
//! (common, and publicly documented at large IXPs) the suppression wins and
//! the attackee member silently loses the route.

use crate::roles::AttackRoles;
use crate::scenarios::{ScenarioOutcome, ScenarioReport};
use bgpworms_routesim::{
    OriginValidation, Origination, RetainRoutes, RouterConfig, RsEvalOrder, SimSpec,
};
use bgpworms_topology::{EdgeKind, Tier, Topology};
use bgpworms_types::{Asn, Community, Prefix};

/// Variant of the Fig 9 attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsAttackVariant {
    /// No hijack: an intermediate provider adds a conflicting suppress
    /// community to the legitimate member's announcement (§7.5 summary).
    ConflictingCommunities,
    /// Hijack: the attacker originates the prefix at the route server with
    /// a suppress community; its (shorter) announcement wins best-path at
    /// the server.
    Hijack,
}

/// Scenario knobs.
#[derive(Debug, Clone)]
pub struct RouteManipulationScenario {
    /// Which variant runs.
    pub variant: RsAttackVariant,
    /// The route server's community evaluation order.
    pub eval_order: RsEvalOrder,
    /// Origin validation at the route server (some IXPs filter via IRR).
    pub validation: OriginValidation,
    /// Whether a hijacking attacker registered an IRR object.
    pub attacker_registers_irr: bool,
}

impl Default for RouteManipulationScenario {
    fn default() -> Self {
        RouteManipulationScenario {
            variant: RsAttackVariant::ConflictingCommunities,
            eval_order: RsEvalOrder::SuppressFirst,
            validation: OriginValidation::None,
            attacker_registers_irr: false,
        }
    }
}

/// Origin member (attackee 2 in the paper's figure).
pub const ORIGIN: Asn = Asn::new(21);
/// The attacker (intermediate provider or hijacking member).
pub const ATTACKER: Asn = Asn::new(22);
/// The member that loses the route (attackee 1).
pub const VICTIM_MEMBER: Asn = Asn::new(24);
/// The IXP route server (community target).
pub const ROUTE_SERVER: Asn = Asn::new(29);
/// Another innocent member, to show the route still reaches others.
pub const OTHER_MEMBER: Asn = Asn::new(25);

impl RouteManipulationScenario {
    /// The contested prefix.
    pub fn prefix() -> Prefix {
        "10.50.0.0/16".parse().expect("valid")
    }

    fn build_topology(&self) -> Topology {
        let mut topo = Topology::new();
        topo.add_simple(ORIGIN, Tier::Stub);
        topo.add_simple(ATTACKER, Tier::Transit);
        topo.add_simple(VICTIM_MEMBER, Tier::Transit);
        topo.add_simple(OTHER_MEMBER, Tier::Transit);
        topo.add_simple(ROUTE_SERVER, Tier::RouteServer);
        topo.add_edge(ROUTE_SERVER, VICTIM_MEMBER, EdgeKind::PeerToPeer);
        topo.add_edge(ROUTE_SERVER, OTHER_MEMBER, EdgeKind::PeerToPeer);
        match self.variant {
            RsAttackVariant::ConflictingCommunities => {
                // Origin reaches the RS through the attacker, its provider.
                topo.add_edge(ATTACKER, ORIGIN, EdgeKind::ProviderToCustomer);
                topo.add_edge(ROUTE_SERVER, ATTACKER, EdgeKind::PeerToPeer);
            }
            RsAttackVariant::Hijack => {
                // Legit route arrives via OTHER_MEMBER; attacker is a
                // member itself.
                topo.add_edge(OTHER_MEMBER, ORIGIN, EdgeKind::ProviderToCustomer);
                topo.add_edge(ROUTE_SERVER, ATTACKER, EdgeKind::PeerToPeer);
            }
        }
        topo
    }

    fn base_spec<'t>(&self, topo: &'t Topology, p: Prefix) -> SimSpec<'t> {
        let mut rs_cfg = RouterConfig::defaults(ROUTE_SERVER);
        rs_cfg.route_server.eval_order = self.eval_order;
        rs_cfg.validation = self.validation;
        let mut spec = SimSpec::new(topo)
            .retain(RetainRoutes::All)
            .configure(rs_cfg)
            .register_irr(p, ORIGIN)
            .register_rpki(p, ORIGIN);
        if self.attacker_registers_irr {
            spec = spec.register_irr(p, ATTACKER);
        }
        spec
    }

    /// Runs the scenario.
    pub fn run(&self) -> ScenarioReport {
        let topo = self.build_topology();
        let p = Self::prefix();
        let rs16 = ROUTE_SERVER.as_u16().expect("small");
        let victim16 = VICTIM_MEMBER.as_u16().expect("small");
        let announce_victim = Community::new(rs16, victim16);
        let suppress_victim = Community::new(0, victim16);

        let legit = Origination::announce(ORIGIN, p, vec![announce_victim]);

        // Baseline: no attack lever anywhere. The hijack variant's lever is
        // an extra *episode*, so it reuses this same compiled session; only
        // the conflicting-communities variant (an egress-policy lever)
        // compiles an armed world.
        let spec = self.base_spec(&topo, p);
        let baseline_sim = spec.clone().compile();
        let baseline = baseline_sim.run(std::slice::from_ref(&legit));

        let armed_sim;
        let (attack_sim, episodes) = match self.variant {
            RsAttackVariant::ConflictingCommunities => {
                let mut attacker_cfg = RouterConfig::defaults(ATTACKER);
                attacker_cfg.tagging.egress_tags = vec![suppress_victim];
                armed_sim = spec.configure(attacker_cfg).compile();
                (&armed_sim, vec![legit])
            }
            RsAttackVariant::Hijack => (
                &baseline_sim,
                vec![
                    legit,
                    Origination::announce(ATTACKER, p, vec![suppress_victim]).at(100),
                ],
            ),
        };
        let attacked = attack_sim.run(&episodes);

        let base_has = baseline.route_at(VICTIM_MEMBER, &p).is_some();
        let attack_has = attacked.route_at(VICTIM_MEMBER, &p).is_some();
        let other_has = attacked.route_at(OTHER_MEMBER, &p).is_some();
        let success = base_has && !attack_has;

        ScenarioReport {
            name: format!(
                "route-manipulation/{}",
                match self.variant {
                    RsAttackVariant::ConflictingCommunities => "no-hijack",
                    RsAttackVariant::Hijack => "hijack",
                }
            ),
            roles: AttackRoles {
                attacker: ATTACKER,
                attackee: VICTIM_MEMBER,
                community_target: ROUTE_SERVER,
            },
            outcome: if success {
                ScenarioOutcome::Success
            } else {
                ScenarioOutcome::Blocked
            },
            evidence: vec![
                format!("baseline: {VICTIM_MEMBER} has route to {p}: {base_has}"),
                format!("attack:   {VICTIM_MEMBER} has route to {p}: {attack_has}"),
                format!("attack:   {OTHER_MEMBER} has route to {p}: {other_has}"),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicting_communities_suppress_first_succeeds() {
        let report = RouteManipulationScenario::default().run();
        assert!(report.succeeded(), "{report}");
    }

    #[test]
    fn conflicting_communities_announce_first_fails() {
        // §7.5: the attack hinges on the evaluation order.
        let report = RouteManipulationScenario {
            eval_order: RsEvalOrder::AnnounceFirst,
            ..RouteManipulationScenario::default()
        }
        .run();
        assert!(!report.succeeded(), "{report}");
    }

    #[test]
    fn hijack_variant_succeeds_without_validation() {
        let report = RouteManipulationScenario {
            variant: RsAttackVariant::Hijack,
            ..RouteManipulationScenario::default()
        }
        .run();
        assert!(report.succeeded(), "{report}");
    }

    #[test]
    fn hijack_variant_blocked_by_irr_filtering_unless_circumvented() {
        let blocked = RouteManipulationScenario {
            variant: RsAttackVariant::Hijack,
            validation: OriginValidation::Irr {
                validate_after_blackhole: false,
            },
            ..RouteManipulationScenario::default()
        }
        .run();
        assert!(!blocked.succeeded(), "{blocked}");
        let circumvented = RouteManipulationScenario {
            variant: RsAttackVariant::Hijack,
            validation: OriginValidation::Irr {
                validate_after_blackhole: false,
            },
            attacker_registers_irr: true,
            ..RouteManipulationScenario::default()
        }
        .run();
        assert!(circumvented.succeeded(), "{circumvented}");
    }

    #[test]
    fn other_members_keep_receiving_the_route() {
        let report = RouteManipulationScenario::default().run();
        assert!(report.succeeded());
        assert!(
            report
                .evidence
                .iter()
                .any(|l| l.contains(&format!("{OTHER_MEMBER} has route to")) && l.contains("true")),
            "surgical suppression: only the victim member loses the route\n{report}"
        );
    }
}
