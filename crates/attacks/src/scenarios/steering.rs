//! Traffic steering — Fig 8(a): prepend community + hijack routes traffic
//! through a monitor; Fig 8(b): a local-pref "backup" community forces the
//! attackee to shift all its egress traffic to one link.

use crate::roles::AttackRoles;
use crate::scenarios::{ScenarioOutcome, ScenarioReport};
use bgpworms_dataplane::{trace, Fib};
use bgpworms_routesim::{
    ActScope, OriginValidation, Origination, RetainRoutes, RouterConfig, SimSpec,
};
use bgpworms_topology::{EdgeKind, Tier, Topology};
use bgpworms_types::{Asn, Community, Prefix};

// ---------------------------------------------------------------------
// Fig 8(a): prepend steering with hijack.
// ---------------------------------------------------------------------

/// Fig 8(a) knobs.
#[derive(Debug, Clone)]
pub struct PrependHijackScenario {
    /// Scope of the target's steering services.
    pub target_scope: ActScope,
    /// Origin validation at the target.
    pub validation: OriginValidation,
    /// Whether the attacker registered an IRR object for the victim prefix.
    pub attacker_registers_irr: bool,
}

impl Default for PrependHijackScenario {
    fn default() -> Self {
        PrependHijackScenario {
            target_scope: ActScope::CustomersOnly,
            validation: OriginValidation::None,
            attacker_registers_irr: false,
        }
    }
}

/// Victim origin of p.
pub const VICTIM: Asn = Asn::new(1);
/// Attacker (customer of the community target).
pub const ATTACKER: Asn = Asn::new(2);
/// Community target offering prepend services.
pub const TARGET: Asn = Asn::new(3);
/// Intermediate transit on the legitimate path toward the target.
pub const MIDDLE: Asn = Asn::new(4);
/// The "monitor" path the traffic gets steered through.
pub const MONITOR: Asn = Asn::new(5);
/// Traffic source whose routing flips.
pub const SOURCE: Asn = Asn::new(6);
/// Transit between the monitor and the victim.
pub const MONITOR_UPSTREAM: Asn = Asn::new(7);

impl PrependHijackScenario {
    /// The victim prefix.
    pub fn prefix() -> Prefix {
        "10.30.0.0/16".parse().expect("valid")
    }

    fn build(&self) -> Topology {
        let mut topo = Topology::new();
        for (asn, tier) in [
            (VICTIM, Tier::Stub),
            (ATTACKER, Tier::Stub),
            (TARGET, Tier::Transit),
            (MIDDLE, Tier::Transit),
            (MONITOR, Tier::Transit),
            (SOURCE, Tier::Stub),
            (MONITOR_UPSTREAM, Tier::Transit),
        ] {
            topo.add_simple(asn, tier);
        }
        // Legit path to target: 1 → 4 → 3 (both customer links).
        topo.add_edge(MIDDLE, VICTIM, EdgeKind::ProviderToCustomer);
        topo.add_edge(TARGET, MIDDLE, EdgeKind::ProviderToCustomer);
        // Monitor path: 1 → 7 → 5.
        topo.add_edge(MONITOR_UPSTREAM, VICTIM, EdgeKind::ProviderToCustomer);
        topo.add_edge(MONITOR, MONITOR_UPSTREAM, EdgeKind::ProviderToCustomer);
        // Attacker is a customer of the target.
        topo.add_edge(TARGET, ATTACKER, EdgeKind::ProviderToCustomer);
        // Source multihomes to target and monitor.
        topo.add_edge(TARGET, SOURCE, EdgeKind::ProviderToCustomer);
        topo.add_edge(MONITOR, SOURCE, EdgeKind::ProviderToCustomer);
        topo
    }

    /// Runs baseline vs. attack.
    pub fn run(&self) -> ScenarioReport {
        let topo = self.build();
        let p = Self::prefix();
        let host = u32::from(
            "10.30.0.1"
                .parse::<std::net::Ipv4Addr>()
                .expect("valid host"),
        );
        let prepend2 = Community::new(TARGET.as_u16().expect("small"), 422);

        let mut target_cfg = RouterConfig::defaults(TARGET);
        target_cfg
            .services
            .prepend
            .extend([(421u16, 1u8), (422, 2)]);
        target_cfg.services.steering_scope = self.target_scope;
        target_cfg.validation = self.validation;
        let mut spec = SimSpec::new(&topo)
            .retain(RetainRoutes::All)
            .configure(target_cfg)
            .register_irr(p, VICTIM)
            .register_rpki(p, VICTIM);
        if self.attacker_registers_irr {
            spec = spec.register_irr(p, ATTACKER);
        }
        // The attack lever is an extra episode: one session, two runs.
        let sim = spec.compile();

        let legit = Origination::announce(VICTIM, p, vec![]);
        let baseline = sim.run(std::slice::from_ref(&legit));
        let base_fib = Fib::from_sim(&baseline);
        let base_trace = trace(&base_fib, SOURCE, host);

        let hijack = Origination::announce(ATTACKER, p, vec![prepend2]).at(100);
        let attacked = sim.run(&[legit, hijack]);
        let attack_fib = Fib::from_sim(&attacked);
        let attack_trace = trace(&attack_fib, SOURCE, host);

        // Success per the paper: the source's traffic is rerouted via the
        // monitor AND still reaches the victim (interception, not outage).
        let base_via = base_trace.path.get(1).copied();
        let attack_via = attack_trace.path.get(1).copied();
        let steered = base_via == Some(TARGET) && attack_via == Some(MONITOR);
        let delivered = attack_trace.delivered() && attack_trace.path.last() == Some(&VICTIM);

        ScenarioReport {
            name: "steering/prepend-hijack".into(),
            roles: AttackRoles {
                attacker: ATTACKER,
                attackee: VICTIM,
                community_target: TARGET,
            },
            outcome: if steered && delivered {
                ScenarioOutcome::Success
            } else {
                ScenarioOutcome::Blocked
            },
            evidence: vec![
                format!("baseline: {SOURCE} → {:?}", base_trace.path),
                format!("attack:   {SOURCE} → {:?}", attack_trace.path),
            ],
        }
    }
}

// ---------------------------------------------------------------------
// Fig 8(b): local-pref steering without hijack.
// ---------------------------------------------------------------------

/// Fig 8(b) knobs.
#[derive(Debug, Clone)]
pub struct LocalPrefScenario {
    /// Scope of the attackee's local-pref service. The attacker announces
    /// from a *provider-side* path, so `CustomersOnly` blocks the attack —
    /// the paper's reason for rating steering "hard".
    pub target_scope: ActScope,
}

impl Default for LocalPrefScenario {
    fn default() -> Self {
        LocalPrefScenario {
            target_scope: ActScope::Any,
        }
    }
}

/// Origin of p (far side).
pub const LP_ORIGIN: Asn = Asn::new(15);
/// The attackee *and* community target (its own local-pref communities are
/// abused against it).
pub const LP_ATTACKEE: Asn = Asn::new(11);
/// The attacker: one of the attackee's providers.
pub const LP_ATTACKER: Asn = Asn::new(12);
/// The alternate (expensive) provider the traffic is forced through.
pub const LP_OTHER: Asn = Asn::new(14);

impl LocalPrefScenario {
    /// The steered prefix.
    pub fn prefix() -> Prefix {
        "10.40.0.0/16".parse().expect("valid")
    }

    /// Runs baseline vs. attack.
    pub fn run(&self) -> ScenarioReport {
        let mut topo = Topology::new();
        for (asn, tier) in [
            (LP_ORIGIN, Tier::Stub),
            (LP_ATTACKEE, Tier::Stub),
            (LP_ATTACKER, Tier::Transit),
            (LP_OTHER, Tier::Transit),
        ] {
            topo.add_simple(asn, tier);
        }
        // Origin is a customer of both transits.
        topo.add_edge(LP_ATTACKER, LP_ORIGIN, EdgeKind::ProviderToCustomer);
        topo.add_edge(LP_OTHER, LP_ORIGIN, EdgeKind::ProviderToCustomer);
        // The attackee buys transit from both.
        topo.add_edge(LP_ATTACKER, LP_ATTACKEE, EdgeKind::ProviderToCustomer);
        topo.add_edge(LP_OTHER, LP_ATTACKEE, EdgeKind::ProviderToCustomer);

        let p = Self::prefix();
        let backup = Community::new(LP_ATTACKEE.as_u16().expect("small"), 70);

        let mut attackee_cfg = RouterConfig::defaults(LP_ATTACKEE);
        attackee_cfg.services.local_pref.insert(70, 70);
        attackee_cfg.services.steering_scope = self.target_scope;
        let spec = SimSpec::new(&topo)
            .retain(RetainRoutes::All)
            .configure(attackee_cfg);

        let baseline = spec
            .clone()
            .compile()
            .run(&[Origination::announce(LP_ORIGIN, p, vec![])]);
        let base_via = baseline
            .route_at(LP_ATTACKEE, &p)
            .and_then(|r| r.source.neighbor());

        // Attack: the attacker tags its announcements with the attackee's
        // "backup" community — a config lever, so the armed world compiles
        // from a clone of the baseline spec.
        let mut attacker_cfg = RouterConfig::defaults(LP_ATTACKER);
        attacker_cfg.tagging.egress_tags = vec![backup];
        let attacked = spec
            .configure(attacker_cfg)
            .compile()
            .run(&[Origination::announce(LP_ORIGIN, p, vec![])]);
        let attack_route = attacked.route_at(LP_ATTACKEE, &p);
        let attack_via = attack_route.and_then(|r| r.source.neighbor());
        let best_lp = attack_route.map(|r| r.local_pref).unwrap_or(0);

        let success = base_via == Some(LP_ATTACKER) && attack_via == Some(LP_OTHER);

        ScenarioReport {
            name: "steering/local-pref".into(),
            roles: AttackRoles {
                attacker: LP_ATTACKER,
                attackee: LP_ATTACKEE,
                community_target: LP_ATTACKEE,
            },
            outcome: if success {
                ScenarioOutcome::Success
            } else {
                ScenarioOutcome::Blocked
            },
            evidence: vec![
                format!(
                    "baseline egress: via {}",
                    base_via
                        .map(|a| a.to_string())
                        .unwrap_or_else(|| "-".into())
                ),
                format!(
                    "attack egress:   via {} (winning local-pref {best_lp}; \
                     the {LP_ATTACKER} path was demoted to the service value)",
                    attack_via
                        .map(|a| a.to_string())
                        .unwrap_or_else(|| "-".into())
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepend_hijack_steers_through_monitor() {
        let report = PrependHijackScenario::default().run();
        assert!(report.succeeded(), "{report}");
    }

    #[test]
    fn prepend_hijack_blocked_by_validation() {
        let report = PrependHijackScenario {
            validation: OriginValidation::Irr {
                validate_after_blackhole: false,
            },
            ..PrependHijackScenario::default()
        }
        .run();
        assert!(!report.succeeded(), "{report}");
        // …until the attacker updates the IRR (§7.4: "IRR records … are
        // typically checked, but the check can be circumvented").
        let report = PrependHijackScenario {
            validation: OriginValidation::Irr {
                validate_after_blackhole: false,
            },
            attacker_registers_irr: true,
            ..PrependHijackScenario::default()
        }
        .run();
        assert!(report.succeeded(), "{report}");
    }

    #[test]
    fn customers_only_scope_accepts_customer_attacker() {
        // The attacker is the target's customer, so even CustomersOnly
        // triggers the prepend.
        let report = PrependHijackScenario {
            target_scope: ActScope::CustomersOnly,
            ..PrependHijackScenario::default()
        }
        .run();
        assert!(report.succeeded(), "{report}");
    }

    #[test]
    fn local_pref_attack_moves_egress_link() {
        let report = LocalPrefScenario::default().run();
        assert!(report.succeeded(), "{report}");
        assert!(
            report
                .evidence
                .iter()
                .any(|l| l.contains(&format!("attack egress:   via {LP_OTHER}"))),
            "egress moved to the alternate provider:\n{report}"
        );
    }

    #[test]
    fn local_pref_attack_blocked_by_customer_scope() {
        // The attacker is the attackee's *provider*: a customers-only
        // service scope ignores the community — the flattening-of-the-
        // Internet impediment from §7.4.
        let report = LocalPrefScenario {
            target_scope: ActScope::CustomersOnly,
        }
        .run();
        assert!(!report.succeeded(), "{report}");
    }

    #[test]
    fn roles_are_reported() {
        let report = LocalPrefScenario::default().run();
        assert_eq!(report.roles.attackee, report.roles.community_target);
    }
}
