//! Remotely triggered blackholing — Fig 7(a) (no hijack) and 7(b) (with
//! hijack).
//!
//! Topology (paper's Fig 7):
//!
//! ```text
//!        AS4 (traffic source, provider of AS3)
//!         |
//!        AS3 (community target: offers ASN:666 RTBH)
//!        /  \
//!      AS2   AS1 (attackee, originates p = 10.10.10.0/24)
//!        \  /
//!   (AS1 is also AS2's customer in the no-hijack variant)
//! ```
//!
//! *No hijack:* AS2 merely transits AS1's announcement but adds `AS3:666`
//! on egress; AS3 prefers the blackhole-tagged route (RTBH local-pref) even
//! though the path is longer, and installs a null route.
//!
//! *Hijack:* AS2 originates p itself, tagged `AS3:666`. Origin validation
//! at AS3 (when present and correctly ordered) blocks it — unless the
//! attacker polluted the IRR (§7.3) or the target checks the blackhole
//! community before validating (§6.3).

use crate::roles::AttackRoles;
use crate::scenarios::{ScenarioOutcome, ScenarioReport};
use bgpworms_dataplane::{trace, Fib, LookingGlass, TraceOutcome};
use bgpworms_routesim::{
    ActScope, BlackholeService, CommunityPropagationPolicy, OriginValidation, Origination,
    RetainRoutes, RouterConfig, SimSpec,
};
use bgpworms_topology::{EdgeKind, Tier, Topology};
use bgpworms_types::{Asn, Community, Ipv4Prefix, Prefix};

/// Knobs for the RTBH scenario.
#[derive(Debug, Clone)]
pub struct RtbhScenario {
    /// Hijack variant (Fig 7b) instead of on-path tagging (Fig 7a).
    pub hijack: bool,
    /// Who may trigger the target's blackhole service.
    pub target_scope: ActScope,
    /// Origin validation at the target.
    pub validation: OriginValidation,
    /// Whether the attacker registered an IRR route object for the victim
    /// prefix (§7.3's circumvention).
    pub attacker_registers_irr: bool,
    /// Insert an intermediate AS between attacker and target with this
    /// community policy (None = direct session). Models the multi-hop
    /// necessary condition.
    pub intermediate: Option<CommunityPropagationPolicy>,
    /// Whether the attacker's router sends communities at all.
    pub attacker_sends_communities: bool,
    /// Local preference the target installs for accepted blackhole routes.
    /// `None` = the Cisco-white-paper raise (200), which makes blackhole
    /// routes "generally preferred even when the attacking AS path is
    /// longer" (§7.3). The ablation sets an ordinary value to show the
    /// preference rule is load-bearing.
    pub blackhole_local_pref: Option<u32>,
}

impl Default for RtbhScenario {
    fn default() -> Self {
        RtbhScenario {
            hijack: false,
            target_scope: ActScope::Any,
            validation: OriginValidation::None,
            attacker_registers_irr: false,
            intermediate: None,
            attacker_sends_communities: true,
            blackhole_local_pref: None,
        }
    }
}

/// Fixed cast of the scenario.
pub const ATTACKEE: Asn = Asn::new(1);
/// The attacker AS.
pub const ATTACKER: Asn = Asn::new(2);
/// The community target (blackhole provider).
pub const TARGET: Asn = Asn::new(3);
/// The upstream traffic source.
pub const SOURCE: Asn = Asn::new(4);
/// Optional intermediate between attacker and target.
pub const INTERMEDIATE: Asn = Asn::new(5);

impl RtbhScenario {
    /// The victim prefix.
    pub fn victim_prefix() -> Ipv4Prefix {
        "10.10.10.0/24".parse().expect("valid prefix")
    }

    fn build_topology(&self) -> Topology {
        let mut topo = Topology::new();
        topo.add_simple(ATTACKEE, Tier::Stub);
        topo.add_simple(ATTACKER, Tier::Transit);
        topo.add_simple(TARGET, Tier::Transit);
        topo.add_simple(SOURCE, Tier::Tier1);
        // AS3 provides transit to AS1; AS4 provides transit to AS3.
        topo.add_edge(TARGET, ATTACKEE, EdgeKind::ProviderToCustomer);
        topo.add_edge(SOURCE, TARGET, EdgeKind::ProviderToCustomer);
        if !self.hijack {
            // On-path variant: AS1 also announces via AS2.
            topo.add_edge(ATTACKER, ATTACKEE, EdgeKind::ProviderToCustomer);
        }
        // Attacker reaches the target either directly (as its customer) or
        // through an intermediate customer chain.
        match self.intermediate {
            None => topo.add_edge(TARGET, ATTACKER, EdgeKind::ProviderToCustomer),
            Some(_) => {
                topo.add_simple(INTERMEDIATE, Tier::Transit);
                topo.add_edge(TARGET, INTERMEDIATE, EdgeKind::ProviderToCustomer);
                topo.add_edge(INTERMEDIATE, ATTACKER, EdgeKind::ProviderToCustomer);
            }
        }
        topo
    }

    fn spec<'t>(&self, topo: &'t Topology, armed: bool) -> SimSpec<'t> {
        let mut target_cfg = RouterConfig::defaults(TARGET);
        target_cfg.services.blackhole = Some(BlackholeService {
            scope: self.target_scope,
            local_pref: self
                .blackhole_local_pref
                .unwrap_or(BlackholeService::default().local_pref),
            ..BlackholeService::default()
        });
        target_cfg.validation = self.validation;

        let mut attacker_cfg = RouterConfig::defaults(ATTACKER);
        attacker_cfg.send_community_configured = self.attacker_sends_communities;
        attacker_cfg.vendor = bgpworms_routesim::Vendor::Cisco; // gate applies
        if armed && !self.hijack {
            // Fig 7a: the attacker tags the transited announcement.
            attacker_cfg.tagging.egress_tags = vec![self.blackhole_community()];
        }

        // Ground truth registries: victim owns p.
        let p = Prefix::V4(Self::victim_prefix());
        let mut spec = SimSpec::new(topo)
            .retain(RetainRoutes::All)
            .configure(target_cfg)
            .configure(attacker_cfg)
            .register_irr(p, ATTACKEE)
            .register_rpki(p, ATTACKEE);
        if let Some(policy) = &self.intermediate {
            let mut mid = RouterConfig::defaults(INTERMEDIATE);
            mid.propagation = policy.clone();
            spec = spec.configure(mid);
        }
        if self.attacker_registers_irr {
            spec = spec.register_irr(p, ATTACKER);
        }
        spec
    }

    fn blackhole_community(&self) -> Community {
        Community::new(TARGET.as_u16().expect("small ASN"), 666)
    }

    /// Runs baseline and attack, returning the report.
    pub fn run(&self) -> ScenarioReport {
        let topo = self.build_topology();
        let p = Prefix::V4(Self::victim_prefix());
        let host = u32::from(
            "10.10.10.1"
                .parse::<std::net::Ipv4Addr>()
                .expect("valid host"),
        );

        // Hijack variant: baseline and attack share one config world (the
        // lever is an extra *episode*), so one compiled session runs both.
        // No-hijack variant: the lever is the attacker's egress policy, so
        // the armed world compiles separately.
        let baseline_sim = self.spec(&topo, false).compile();
        let baseline = baseline_sim.run(&[Origination::announce(ATTACKEE, p, vec![])]);
        let base_fib = Fib::from_sim(&baseline);
        let base_trace = trace(&base_fib, SOURCE, host);

        let armed_sim;
        let sim = if self.hijack {
            &baseline_sim
        } else {
            armed_sim = self.spec(&topo, true).compile();
            &armed_sim
        };
        let mut episodes = vec![Origination::announce(ATTACKEE, p, vec![])];
        if self.hijack {
            episodes
                .push(Origination::announce(ATTACKER, p, vec![self.blackhole_community()]).at(100));
        }
        // (In the no-hijack variant the attacker's router adds the
        // community via its egress policy — no extra episode needed.)
        let attacked = sim.run(&episodes);
        let attack_fib = Fib::from_sim(&attacked);
        let attack_trace = trace(&attack_fib, SOURCE, host);

        let lg = LookingGlass::new(&attacked);
        let target_blackholed = attacked
            .route_at(TARGET, &p)
            .map(|r| r.blackholed)
            .unwrap_or(false);

        // Success: the victim was reachable before, the target installed
        // the null route, and traffic no longer arrives — dropped either at
        // the target itself or upstream of it, because the accepted RTBH
        // route carries NO_EXPORT and withdraws the path from providers.
        let success = base_trace.outcome == TraceOutcome::Delivered
            && attack_trace.outcome != TraceOutcome::Delivered
            && target_blackholed;

        let mut evidence = vec![
            format!(
                "baseline trace {SOURCE}→{p}: {:?} via {:?}",
                base_trace.outcome, base_trace.path
            ),
            format!(
                "attack   trace {SOURCE}→{p}: {:?} via {:?}",
                attack_trace.outcome, attack_trace.path
            ),
        ];
        evidence.extend(lg.show(TARGET, &p).lines().map(str::to_string));

        ScenarioReport {
            name: format!("rtbh/{}", if self.hijack { "hijack" } else { "no-hijack" }),
            roles: AttackRoles {
                attacker: ATTACKER,
                attackee: ATTACKEE,
                community_target: TARGET,
            },
            outcome: if success {
                ScenarioOutcome::Success
            } else {
                ScenarioOutcome::Blocked
            },
            evidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hijack_rtbh_succeeds_by_default() {
        let report = RtbhScenario::default().run();
        assert!(report.succeeded(), "{report}");
        assert!(
            report.evidence.iter().any(|l| l.contains("Null0")),
            "looking glass shows null route"
        );
    }

    #[test]
    fn hijack_rtbh_succeeds_without_validation() {
        let report = RtbhScenario {
            hijack: true,
            ..RtbhScenario::default()
        }
        .run();
        assert!(report.succeeded(), "{report}");
    }

    #[test]
    fn validation_blocks_hijack_but_not_onpath() {
        let strict = OriginValidation::Irr {
            validate_after_blackhole: false,
        };
        let hijack = RtbhScenario {
            hijack: true,
            validation: strict,
            ..RtbhScenario::default()
        }
        .run();
        assert!(!hijack.succeeded(), "validated hijack must fail:\n{hijack}");
        let onpath = RtbhScenario {
            hijack: false,
            validation: strict,
            ..RtbhScenario::default()
        }
        .run();
        assert!(
            onpath.succeeded(),
            "on-path attack needs no hijack and passes validation:\n{onpath}"
        );
    }

    #[test]
    fn irr_pollution_circumvents_validation() {
        let report = RtbhScenario {
            hijack: true,
            validation: OriginValidation::Irr {
                validate_after_blackhole: false,
            },
            attacker_registers_irr: true,
            ..RtbhScenario::default()
        }
        .run();
        assert!(report.succeeded(), "{report}");
    }

    #[test]
    fn misordered_validation_lets_hijack_through() {
        let report = RtbhScenario {
            hijack: true,
            validation: OriginValidation::Irr {
                validate_after_blackhole: true,
            },
            ..RtbhScenario::default()
        }
        .run();
        assert!(report.succeeded(), "§6.3 misconfiguration:\n{report}");
    }

    #[test]
    fn strict_rpki_blocks_even_with_irr_pollution() {
        let report = RtbhScenario {
            hijack: true,
            validation: OriginValidation::Strict,
            attacker_registers_irr: true,
            ..RtbhScenario::default()
        }
        .run();
        assert!(!report.succeeded(), "{report}");
    }

    #[test]
    fn community_stripping_intermediate_blocks_attack() {
        let report = RtbhScenario {
            intermediate: Some(CommunityPropagationPolicy::StripAll),
            ..RtbhScenario::default()
        }
        .run();
        assert!(!report.succeeded(), "necessary condition fails:\n{report}");
        let forwarding = RtbhScenario {
            intermediate: Some(CommunityPropagationPolicy::ForwardAll),
            ..RtbhScenario::default()
        }
        .run();
        assert!(forwarding.succeeded(), "{forwarding}");
    }

    #[test]
    fn attacker_without_send_community_fails() {
        let report = RtbhScenario {
            attacker_sends_communities: false,
            ..RtbhScenario::default()
        }
        .run();
        assert!(!report.succeeded(), "{report}");
    }

    #[test]
    fn customers_only_scope_still_reachable_for_customer_attacker() {
        // The attacker is the target's customer in this topology, so even
        // CustomersOnly scope triggers — matching §7.3's finding that RTBH
        // is the easiest attack.
        let report = RtbhScenario {
            target_scope: ActScope::CustomersOnly,
            ..RtbhScenario::default()
        }
        .run();
        assert!(report.succeeded(), "{report}");
    }
}
