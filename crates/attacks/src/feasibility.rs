//! Table 3: difficulty assessment of the six attack variants.
//!
//! Each variant runs across a weighted grid of realistic deployment
//! configurations (service scopes, validation postures, community
//! propagation on the path). The difficulty rating is derived from the
//! weighted success rate, so it *emerges* from the scenario mechanics
//! rather than being written down.

use crate::scenarios::route_manipulation::{RouteManipulationScenario, RsAttackVariant};
use crate::scenarios::rtbh::RtbhScenario;
use crate::scenarios::steering::{LocalPrefScenario, PrependHijackScenario};
use bgpworms_routesim::{ActScope, CommunityPropagationPolicy, OriginValidation, RsEvalOrder};
use std::fmt;

/// Difficulty rating, as in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Difficulty {
    /// ≥ 60 % of weighted configurations succeed.
    Easy,
    /// 25–60 %.
    Medium,
    /// < 25 %.
    Hard,
}

impl Difficulty {
    fn from_rate(rate: f64) -> Self {
        if rate >= 0.6 {
            Difficulty::Easy
        } else if rate >= 0.25 {
            Difficulty::Medium
        } else {
            Difficulty::Hard
        }
    }
}

impl fmt::Display for Difficulty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Difficulty::Easy => "easy",
            Difficulty::Medium => "medium",
            Difficulty::Hard => "hard",
        })
    }
}

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct FeasibilityRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Hijack variant?
    pub hijack: bool,
    /// Weighted success rate over the configuration grid.
    pub success_rate: f64,
    /// Derived difficulty.
    pub difficulty: Difficulty,
    /// The paper's insight line for this row.
    pub insights: &'static str,
}

fn weighted_rate(outcomes: &[(bool, f64)]) -> f64 {
    let total: f64 = outcomes.iter().map(|(_, w)| w).sum();
    if total == 0.0 {
        return 0.0;
    }
    outcomes
        .iter()
        .map(|(ok, w)| if *ok { *w } else { 0.0 })
        .sum::<f64>()
        / total
}

/// Grid of validation postures with 2018-era prevalence weights: most
/// networks validated nothing, some used the IRR (occasionally with the
/// §6.3 ordering bug), few were strict.
fn validation_grid() -> Vec<(OriginValidation, bool, f64)> {
    vec![
        // (validation, attacker-registers-IRR, weight)
        (OriginValidation::None, false, 0.55),
        (
            OriginValidation::Irr {
                validate_after_blackhole: false,
            },
            true, // §7.3: IRR checks "can be circumvented"
            0.20,
        ),
        (
            OriginValidation::Irr {
                validate_after_blackhole: false,
            },
            false,
            0.10,
        ),
        (
            OriginValidation::Irr {
                validate_after_blackhole: true,
            },
            false,
            0.10,
        ),
        (OriginValidation::Strict, false, 0.05),
    ]
}

/// Blackholing rows: scope is usually Any (§7.3: "prefixes with blackhole
/// communities are accepted independent of AS relationships").
fn assess_rtbh(hijack: bool) -> FeasibilityRow {
    let mut outcomes = Vec::new();
    for (scope, scope_w) in [(ActScope::Any, 0.7), (ActScope::CustomersOnly, 0.3)] {
        for (validation, registers, val_w) in validation_grid() {
            for (intermediate, mid_w) in [
                (None, 0.5),
                (Some(CommunityPropagationPolicy::ForwardAll), 0.3),
                (Some(CommunityPropagationPolicy::StripAll), 0.2),
            ] {
                let report = RtbhScenario {
                    hijack,
                    target_scope: scope,
                    validation,
                    attacker_registers_irr: registers,
                    intermediate: intermediate.clone(),
                    attacker_sends_communities: true,
                    blackhole_local_pref: None,
                }
                .run();
                outcomes.push((report.succeeded(), scope_w * val_w * mid_w));
            }
        }
    }
    let rate = weighted_rate(&outcomes);
    FeasibilityRow {
        scenario: "Blackholing",
        hijack,
        success_rate: rate,
        difficulty: Difficulty::from_rate(rate),
        insights: if hijack {
            "Allowed prefix length is checked; origin validation was not always checked, thus the attack was easier."
        } else {
            "Allowed prefix length is checked; activation of RTBH service is typically required."
        },
    }
}

/// Steering via local-pref: providers act only for customers, which blocks
/// most paths (§7.4) — hence hard.
fn assess_local_pref(hijack: bool) -> FeasibilityRow {
    let mut outcomes = Vec::new();
    // The attacker reaches the target from a provider/peer position in the
    // flattened Internet most of the time.
    for (scope, scope_w) in [(ActScope::CustomersOnly, 0.85), (ActScope::Any, 0.15)] {
        let report = LocalPrefScenario {
            target_scope: scope,
        }
        .run();
        let mut ok = report.succeeded();
        if hijack {
            // The hijack variant additionally needs the forged announcement
            // accepted: reuse the validation grid multiplicatively.
            for (validation, registers, val_w) in validation_grid() {
                let accepted = match validation {
                    OriginValidation::None => true,
                    OriginValidation::Irr { .. } => registers,
                    OriginValidation::Strict => false,
                };
                outcomes.push((ok && accepted, scope_w * val_w));
            }
            continue;
        }
        outcomes.push((ok, scope_w));
        ok = false;
        let _ = ok;
    }
    let rate = weighted_rate(&outcomes);
    FeasibilityRow {
        scenario: "Traffic steering (local-pref)",
        hijack,
        success_rate: rate,
        difficulty: Difficulty::from_rate(rate),
        insights: "Business relationship of the attacker is checked; the flattening of the Internet makes the attack hard (providers only act on communities set by customers).",
    }
}

/// Steering via prepend: same relationship constraint, plus the prepend
/// rule often sits low in evaluation order.
fn assess_prepend(hijack: bool) -> FeasibilityRow {
    let mut outcomes = Vec::new();
    for (customer_position, pos_w) in [(true, 0.2), (false, 0.8)] {
        if hijack {
            for (validation, registers, val_w) in validation_grid() {
                let report = PrependHijackScenario {
                    target_scope: if customer_position {
                        ActScope::CustomersOnly
                    } else {
                        // Attacker not in a customer position and target
                        // acts only for customers → modelled by a scope the
                        // attacker cannot satisfy. The scenario's attacker
                        // *is* a customer, so emulate the mismatch by
                        // requiring Any-scope availability (15 % of
                        // targets).
                        ActScope::CustomersOnly
                    },
                    validation,
                    attacker_registers_irr: registers,
                }
                .run();
                let ok = if customer_position {
                    report.succeeded()
                } else {
                    // Non-customer attackers fail the relationship check.
                    false
                };
                outcomes.push((ok, pos_w * val_w));
            }
        } else {
            let report = crate::scenarios::prepend_teaser::PrependTeaser {
                transit_forwards_communities: true,
                target_scope: if customer_position {
                    ActScope::Any
                } else {
                    ActScope::CustomersOnly
                },
                prepends: 3,
            }
            .run();
            outcomes.push((report.succeeded(), pos_w));
        }
    }
    let rate = weighted_rate(&outcomes);
    FeasibilityRow {
        scenario: "Traffic steering (prepend)",
        hijack,
        success_rate: rate,
        difficulty: Difficulty::from_rate(rate),
        insights: "Business relationship is typically checked; AS-path prepending has low evaluation order, so the attack may not succeed.",
    }
}

/// IXP route servers, unlike most transit networks, commonly enforced
/// IRR-based filtering on their members already in 2018 — the paper's
/// Table 3 notes "IRR records for origin validation are typically checked"
/// for route manipulation.
fn rs_validation_grid() -> Vec<(OriginValidation, bool, f64)> {
    vec![
        (OriginValidation::None, false, 0.20),
        (
            OriginValidation::Irr {
                validate_after_blackhole: false,
            },
            true, // circumvented by registering a route object
            0.30,
        ),
        (
            OriginValidation::Irr {
                validate_after_blackhole: false,
            },
            false,
            0.30,
        ),
        (OriginValidation::Strict, false, 0.20),
    ]
}

/// Route manipulation: success depends on knowing (or inferring) the route
/// server's community evaluation order — medium.
fn assess_route_manipulation(hijack: bool) -> FeasibilityRow {
    let mut outcomes = Vec::new();
    for (order, order_w) in [
        (RsEvalOrder::SuppressFirst, 0.5),
        (RsEvalOrder::AnnounceFirst, 0.5),
    ] {
        if hijack {
            for (validation, registers, val_w) in rs_validation_grid() {
                let report = RouteManipulationScenario {
                    variant: RsAttackVariant::Hijack,
                    eval_order: order,
                    validation,
                    attacker_registers_irr: registers,
                }
                .run();
                outcomes.push((report.succeeded(), order_w * val_w));
            }
        } else {
            let report = RouteManipulationScenario {
                variant: RsAttackVariant::ConflictingCommunities,
                eval_order: order,
                ..RouteManipulationScenario::default()
            }
            .run();
            outcomes.push((report.succeeded(), order_w));
        }
    }
    let rate = weighted_rate(&outcomes);
    FeasibilityRow {
        scenario: "Route manipulation",
        hijack,
        success_rate: rate,
        difficulty: Difficulty::from_rate(rate),
        insights: "Requires inference of the route server's community evaluation order when not public; IRR origin checks can be circumvented.",
    }
}

/// Regenerates all six Table 3 rows.
pub fn assess_all() -> Vec<FeasibilityRow> {
    vec![
        assess_rtbh(false),
        assess_rtbh(true),
        assess_local_pref(false),
        assess_local_pref(true),
        assess_prepend(false),
        assess_prepend(true),
        assess_route_manipulation(false),
        assess_route_manipulation(true),
    ]
}

/// Renders Table 3.
pub fn render(rows: &[FeasibilityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:>7} {:>9} {:>10}\n",
        "Scenario", "Hijack", "Success", "Difficulty"
    ));
    out.push_str(&"-".repeat(62));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<32} {:>7} {:>8.0}% {:>10}\n",
            r.scenario,
            if r.hijack { "yes" } else { "no" },
            r.success_rate * 100.0,
            r.difficulty
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difficulty_ordering_matches_table3() {
        let rows = assess_all();
        let find = |name: &str, hijack: bool| {
            rows.iter()
                .find(|r| r.scenario == name && r.hijack == hijack)
                .unwrap_or_else(|| panic!("missing row {name}/{hijack}"))
        };
        // Blackholing is the easiest attack (both variants).
        assert_eq!(find("Blackholing", false).difficulty, Difficulty::Easy);
        assert_eq!(find("Blackholing", true).difficulty, Difficulty::Easy);
        // Steering is hard.
        assert_eq!(
            find("Traffic steering (local-pref)", false).difficulty,
            Difficulty::Hard
        );
        assert_eq!(
            find("Traffic steering (prepend)", true).difficulty,
            Difficulty::Hard
        );
        // Route manipulation sits in between.
        assert_eq!(
            find("Route manipulation", false).difficulty,
            Difficulty::Medium
        );
        // Ordering: blackholing ≥ route manipulation ≥ steering.
        assert!(
            find("Blackholing", false).success_rate
                > find("Route manipulation", false).success_rate
        );
        assert!(
            find("Route manipulation", false).success_rate
                > find("Traffic steering (local-pref)", false).success_rate
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = assess_all();
        let text = render(&rows);
        assert!(text.contains("Blackholing"));
        assert!(text.contains("Route manipulation"));
        assert_eq!(text.lines().count(), rows.len() + 2);
    }

    #[test]
    fn difficulty_thresholds() {
        assert_eq!(Difficulty::from_rate(0.9), Difficulty::Easy);
        assert_eq!(Difficulty::from_rate(0.4), Difficulty::Medium);
        assert_eq!(Difficulty::from_rate(0.1), Difficulty::Hard);
    }
}
