//! §7.2 — propagation checking: announce a prefix tagged with a benign
//! community from each injection platform and count, at the collectors, how
//! many transit ASes forward it.
//!
//! The paper finds a stark asymmetry: the single-homed research network's
//! community is relayed by only ~7 transit providers, while PEERING's
//! (hundreds of sessions at ten PoPs) is relayed by >50 within half an hour
//! and 112 (of 434 ASes on observed paths) within a day.

use crate::conditions::BENIGN_VALUE;
use crate::wild::{attach_peering_platform, attach_research_network, InjectionPlatform};
use bgpworms_routesim::{
    Campaign, CampaignSink, Origination, PrefixOutcome, Workload, WorkloadParams,
};
use bgpworms_topology::{addressing::AddressingParams, PrefixAllocation, TopologyParams};
use bgpworms_types::{Asn, Community, Prefix};
use std::collections::BTreeSet;

/// Result for one injection platform.
#[derive(Debug, Clone)]
pub struct PlatformPropagation {
    /// The platform.
    pub platform: InjectionPlatform,
    /// Distinct ASes observed relaying the benign community (including the
    /// collector peers that exported it to a monitor).
    pub forwarders: BTreeSet<Asn>,
    /// All ASes on any observed path for the test prefix (origin included)
    /// — the paper's "434 transit and origin ASes in the paths".
    pub ases_on_paths: BTreeSet<Asn>,
}

impl PlatformPropagation {
    /// Forwarders as a fraction of path ASes.
    pub fn forwarder_fraction(&self) -> f64 {
        if self.ases_on_paths.is_empty() {
            return 0.0;
        }
        self.forwarders.len() as f64 / self.ases_on_paths.len() as f64
    }
}

/// The full §7.2 experiment report.
#[derive(Debug, Clone)]
pub struct PropagationCheckReport {
    /// The single-homed research network.
    pub research: PlatformPropagation,
    /// The PEERING-like platform.
    pub peering: PlatformPropagation,
}

/// Runs the experiment on a freshly generated Internet.
pub fn run(
    topo_params: &TopologyParams,
    workload_params: &WorkloadParams,
) -> PropagationCheckReport {
    let mut topo = topo_params.build();
    let alloc = PrefixAllocation::assign(&topo, AddressingParams::default());
    let mut workload = Workload::generate(&topo, &alloc, workload_params);

    let research = attach_research_network(
        &mut topo,
        &mut workload,
        Asn::new(65_010),
        "100.64.0.0/24".parse().expect("valid"),
    );
    let peering = attach_peering_platform(
        &mut topo,
        &mut workload,
        Asn::new(65_011),
        "100.64.1.0/24".parse().expect("valid"),
    );

    // Both platforms probe over identical configs: one compiled session,
    // one run per platform.
    let sim = workload.simulation(&topo).compile();
    let research_result = probe(&sim, research);
    let peering_result = probe(&sim, peering);

    PropagationCheckReport {
        research: research_result,
        peering: peering_result,
    }
}

/// Streaming aggregate for one platform probe: collector observations are
/// reduced to the forwarder/on-path AS sets the moment their prefix
/// finishes — the observation lists themselves are dropped in the fold, so
/// the probe retains O(distinct ASes), not O(observations).
struct PropagationSink {
    origin: Asn,
    benign: Community,
    forwarders: BTreeSet<Asn>,
    ases_on_paths: BTreeSet<Asn>,
}

impl CampaignSink for PropagationSink {
    fn fold(&mut self, _prefix: Prefix, outcome: PrefixOutcome) {
        for observations in &outcome.observations {
            for obs in observations {
                let Some(route) = &obs.route else { continue };
                let path = route.path.deprepended().to_vec();
                for &asn in &path {
                    if asn != self.origin {
                        self.ases_on_paths.insert(asn);
                    }
                }
                if route.has_community(self.benign) {
                    // Everyone between the origin (exclusive) and the
                    // monitor relayed the tag, including the collector
                    // peer itself.
                    for &asn in &path {
                        if asn != self.origin {
                            self.forwarders.insert(asn);
                        }
                    }
                }
            }
        }
    }

    fn merge(&mut self, other: Self) {
        self.forwarders.extend(other.forwarders);
        self.ases_on_paths.extend(other.ases_on_paths);
    }
}

fn probe(
    sim: &bgpworms_routesim::CompiledSim<'_>,
    platform: InjectionPlatform,
) -> PlatformPropagation {
    let benign = Community::new(
        platform.asn.as_u16().expect("platform ASN fits"),
        BENIGN_VALUE,
    );
    let p = Prefix::V4(platform.prefix);
    let run = Campaign::new(sim).run(
        &[Origination::announce(platform.asn, p, vec![benign])],
        || PropagationSink {
            origin: platform.asn,
            benign,
            forwarders: BTreeSet::new(),
            ases_on_paths: BTreeSet::new(),
        },
    );
    PlatformPropagation {
        platform,
        forwarders: run.sink.forwarders,
        ases_on_paths: run.sink.ases_on_paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peering_outpropagates_the_research_network() {
        let report = run(
            &TopologyParams::small().seed(42),
            &WorkloadParams::default(),
        );
        assert!(
            !report.peering.forwarders.is_empty(),
            "PEERING's community must be seen somewhere"
        );
        assert!(
            report.peering.forwarders.len() >= report.research.forwarders.len(),
            "multi-session platform reaches at least as many forwarders \
             (peering {} vs research {})",
            report.peering.forwarders.len(),
            report.research.forwarders.len()
        );
        // Both platforms' prefixes propagate somewhere.
        assert!(!report.peering.ases_on_paths.is_empty());
        assert!(!report.research.ases_on_paths.is_empty());
        // Fractions are sane.
        assert!(report.peering.forwarder_fraction() <= 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(&TopologyParams::tiny().seed(5), &WorkloadParams::default());
        let b = run(&TopologyParams::tiny().seed(5), &WorkloadParams::default());
        assert_eq!(a.peering.forwarders, b.peering.forwarders);
        assert_eq!(a.research.forwarders, b.research.forwarders);
    }
}
