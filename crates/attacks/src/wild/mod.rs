//! The §7 "experiments in the wild" harness: everything runs on a full
//! generated Internet with a realistic policy workload, injecting from
//! PEERING-like and research-network-like platforms, and validating with
//! looking glasses plus Atlas-style probing.
//!
//! Ethics, simulated: the paper coordinated every experiment with the
//! affected networks; our closed world has no such constraint, but the
//! harness still only announces prefixes allocated to the injection
//! platforms (except where a scenario explicitly models a consented
//! hijack, mirroring §7.1).

pub mod extended_survey;
pub mod full_table;
pub mod propagation_check;
pub mod routeserver_experiment;
pub mod rtbh_experiment;
pub mod steering_experiment;
pub mod survey;

use bgpworms_routesim::{CommunityPropagationPolicy, RouterConfig, Workload};
use bgpworms_topology::{EdgeKind, Tier, Topology};
use bgpworms_types::{Asn, Ipv4Prefix, Prefix};

/// An injection platform attached to the generated topology.
#[derive(Debug, Clone, Copy)]
pub struct InjectionPlatform {
    /// The platform's ASN.
    pub asn: Asn,
    /// The platform's own experiment prefix (a /24, as PEERING hands out).
    pub prefix: Ipv4Prefix,
}

/// Attaches a single-homed research network with two transit upstreams, one
/// of which strips communities (§7.2: "only one of the upstream providers
/// propagates communities").
pub fn attach_research_network(
    topo: &mut Topology,
    workload: &mut Workload,
    asn: Asn,
    prefix: Ipv4Prefix,
) -> InjectionPlatform {
    let upstreams: Vec<Asn> = topo
        .ases()
        .filter(|n| n.tier == Tier::Transit)
        .map(|n| n.asn)
        .take(2)
        .collect();
    topo.add_simple(asn, Tier::Stub);
    for up in &upstreams {
        topo.add_edge(*up, asn, EdgeKind::ProviderToCustomer);
    }
    if let Some(stripper) = upstreams.first() {
        let cfg = workload
            .configs
            .entry(*stripper)
            .or_insert_with(|| RouterConfig::defaults(*stripper));
        cfg.propagation = CommunityPropagationPolicy::StripAll;
    }
    if let Some(forwarder) = upstreams.get(1) {
        let cfg = workload
            .configs
            .entry(*forwarder)
            .or_insert_with(|| RouterConfig::defaults(*forwarder));
        cfg.propagation = CommunityPropagationPolicy::ForwardAll;
    }
    workload.configs.insert(asn, RouterConfig::defaults(asn));
    register(workload, prefix, asn);
    InjectionPlatform { asn, prefix }
}

/// Attaches a PEERING-like platform: member of every IXP route server plus
/// two transit providers — many sessions, broad propagation visibility.
pub fn attach_peering_platform(
    topo: &mut Topology,
    workload: &mut Workload,
    asn: Asn,
    prefix: Ipv4Prefix,
) -> InjectionPlatform {
    topo.add_simple(asn, Tier::Stub);
    let route_servers: Vec<Asn> = topo
        .ases()
        .filter(|n| n.tier == Tier::RouteServer)
        .map(|n| n.asn)
        .collect();
    for rs in &route_servers {
        topo.add_edge(*rs, asn, EdgeKind::PeerToPeer);
    }
    // Plus direct peering with a sample of transit providers (PEERING's
    // hundreds of sessions) and two transit uplinks for reachability.
    let transits: Vec<Asn> = topo
        .ases()
        .filter(|n| n.tier == Tier::Transit)
        .map(|n| n.asn)
        .collect();
    for t in transits.iter().step_by(3) {
        if topo.role_of(asn, *t).is_none() {
            topo.add_edge(*t, asn, EdgeKind::PeerToPeer);
        }
    }
    for t in transits.iter().take(2) {
        if topo.role_of(asn, *t).is_none() {
            topo.add_edge(*t, asn, EdgeKind::ProviderToCustomer);
        }
    }
    let mut cfg = RouterConfig::defaults(asn);
    cfg.send_community_configured = true;
    workload.configs.insert(asn, cfg);
    register(workload, prefix, asn);
    InjectionPlatform { asn, prefix }
}

fn register(workload: &mut Workload, prefix: Ipv4Prefix, asn: Asn) {
    workload.irr.register(Prefix::V4(prefix), asn);
    workload.rpki.register(Prefix::V4(prefix), asn);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_routesim::WorkloadParams;
    use bgpworms_topology::{addressing::AddressingParams, PrefixAllocation, TopologyParams};

    #[test]
    fn platforms_attach_with_expected_sessions() {
        let mut topo = TopologyParams::tiny().seed(8).build();
        let alloc = PrefixAllocation::assign(&topo, AddressingParams::default());
        let mut workload = Workload::generate(&topo, &alloc, &WorkloadParams::default());

        let research = attach_research_network(
            &mut topo,
            &mut workload,
            Asn::new(65_010),
            "100.64.0.0/24".parse().unwrap(),
        );
        assert_eq!(topo.providers_of(research.asn).count(), 2);

        let peering = attach_peering_platform(
            &mut topo,
            &mut workload,
            Asn::new(65_011),
            "100.64.1.0/24".parse().unwrap(),
        );
        let peers = topo.peers_of(peering.asn).count();
        assert!(peers >= 2, "PEERING should have many sessions, got {peers}");
        assert!(topo.providers_of(peering.asn).count() >= 1);
        assert!(workload
            .irr
            .is_registered(&Prefix::V4(peering.prefix), peering.asn));
    }
}
