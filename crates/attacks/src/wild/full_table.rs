//! Full-table propagation campaigns: announce **every** allocated prefix
//! of the generated Internet at once — the April-2018 table shape the
//! paper measures its community statistics over (§4) — and stream the
//! collector view into table-scale propagation/stripping counts.
//!
//! The whole point of this workload is that it is *mostly duplicate
//! floods*: the table collapses to roughly one equivalence class per
//! origin (plus the odd per-prefix-policy singleton), which is exactly
//! what `Campaign`'s flood memoization exploits. The report therefore
//! carries the class statistics alongside the propagation counts, so the
//! `repro` front end can print the realized hit rate.

use bgpworms_routesim::{
    Campaign, CampaignSink, Origination, PrefixFailure, PrefixOutcome, Workload,
};
use bgpworms_topology::{PrefixAllocation, Topology};
use bgpworms_types::Prefix;

/// One announcement per allocated prefix, at a single instant (time 0),
/// carrying the origin's configured origination tags — the steady-state
/// table, not the day-long trickle of the workload's episode schedule.
/// Sorted by (origin, prefix) via the allocation's iteration order.
pub fn full_table_schedule(workload: &Workload, alloc: &PrefixAllocation) -> Vec<Origination> {
    alloc
        .iter()
        .map(|(origin, prefix)| {
            let (comms, large) = workload
                .configs
                .get(&origin)
                .map(|c| {
                    (
                        c.tagging.origination_tags.clone(),
                        c.tagging.origination_large_tags.clone(),
                    )
                })
                .unwrap_or_default();
            Origination::announce(origin, prefix, comms).with_large(large)
        })
        .collect()
}

/// Origin-preserving sample of a full-table schedule: keeps every prefix
/// of roughly `target / mean-prefixes-per-origin` origins (stride over the
/// origin sequence) rather than a per-prefix stride — a sampled run then
/// exercises the same class structure (duplicate floods per origin) as the
/// full table, just over fewer origins.
pub fn sample_schedule(schedule: &[Origination], target: usize) -> Vec<Origination> {
    if target == 0 || schedule.len() <= target {
        return schedule.to_vec();
    }
    // Group contiguously by origin (the schedule is in allocation order).
    let mut groups: Vec<&[Origination]> = Vec::new();
    let mut start = 0;
    for i in 1..=schedule.len() {
        if i == schedule.len() || schedule[i].origin != schedule[start].origin {
            groups.push(&schedule[start..i]);
            start = i;
        }
    }
    let stride = schedule.len().div_ceil(target).max(1);
    let keep_every = stride.min(groups.len());
    groups
        .iter()
        .step_by(keep_every)
        .flat_map(|g| g.iter().cloned())
        .collect()
}

/// Streaming aggregate over the collector view of a full-table flood:
/// how many observations arrived, and how many still carried at least one
/// community when they did (the paper's propagation-vs-stripping split).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TagPropagation {
    /// Prefixes folded.
    pub prefixes: usize,
    /// Collector observations across all platforms.
    pub observations: usize,
    /// Observations whose route still carried ≥ 1 (regular or large)
    /// community.
    pub tagged_observations: usize,
}

impl CampaignSink for TagPropagation {
    fn fold(&mut self, _prefix: Prefix, outcome: PrefixOutcome) {
        self.prefixes += 1;
        for obs in outcome.observations.iter().flatten() {
            self.observations += 1;
            let tagged = obs
                .route
                .as_ref()
                .is_some_and(|r| !r.communities.is_empty() || !r.large_communities.is_empty());
            if tagged {
                self.tagged_observations += 1;
            }
        }
    }
    fn merge(&mut self, other: Self) {
        self.prefixes += other.prefixes;
        self.observations += other.observations;
        self.tagged_observations += other.tagged_observations;
    }
}

/// Outcome of a full-table campaign: propagation counts plus the class
/// statistics that explain its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct FullTableReport {
    /// Prefixes in the (possibly sampled) schedule.
    pub prefixes: usize,
    /// Distinct flood-equivalence classes — the number of floods actually
    /// simulated.
    pub classes: usize,
    /// Prefixes simulated (first member of each class).
    pub class_sims: u64,
    /// Prefixes replayed from a class representative.
    pub class_hits: u64,
    /// Total engine events across all simulated floods.
    pub events: u64,
    /// Every flood converged.
    pub converged: bool,
    /// Prefixes whose flood exhausted its event budget and was reported
    /// as a structured divergence instead of a result.
    pub diverged: Vec<Prefix>,
    /// Prefixes quarantined by the campaign supervisor after exhausting
    /// their retry budget.
    pub failures: Vec<PrefixFailure>,
    /// The streamed propagation aggregate.
    pub tags: TagPropagation,
}

impl FullTableReport {
    /// Fraction of prefixes whose flood was replayed instead of simulated.
    pub fn hit_rate(&self) -> f64 {
        let total = self.class_sims + self.class_hits;
        if total == 0 {
            return 0.0;
        }
        self.class_hits as f64 / total as f64
    }

    /// True when the table is incomplete: at least one prefix diverged or
    /// was quarantined. Front ends (the `repro` CLI) treat a degraded
    /// report as a failed artefact.
    pub fn degraded(&self) -> bool {
        !self.diverged.is_empty() || !self.failures.is_empty()
    }

    /// The campaign's standard degradation summary (one line per diverged
    /// or quarantined prefix); empty when the report is clean.
    pub fn failure_summary(&self) -> String {
        bgpworms_routesim::failure_summary(&self.diverged, &self.failures)
    }
}

/// Runs a full-table campaign on `workload`'s policies over `alloc`'s
/// prefixes (deaggregate the allocation first for table-realistic size).
/// `sample` caps the schedule via origin-preserving sampling; `None` runs
/// the whole table. `threads` shards the flood workers (memoization and
/// threading compose: classes split across workers, replays are
/// per-member).
pub fn run_full_table(
    workload: &Workload,
    topo: &Topology,
    alloc: &PrefixAllocation,
    sample: Option<usize>,
    threads: usize,
) -> FullTableReport {
    let schedule = full_table_schedule(workload, alloc);
    let schedule = match sample {
        Some(n) => sample_schedule(&schedule, n),
        None => schedule,
    };
    let sim = workload.simulation(topo).threads(threads).compile();
    let campaign = Campaign::new(&sim);
    let stats = campaign.class_stats(&schedule);
    let run = campaign.run(&schedule, TagPropagation::default);
    FullTableReport {
        prefixes: stats.prefixes,
        classes: stats.classes,
        class_sims: run.class_sims,
        class_hits: run.class_hits,
        events: run.events,
        converged: run.converged,
        diverged: run.diverged,
        failures: run.failures,
        tags: run.sink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_routesim::WorkloadParams;
    use bgpworms_topology::{addressing::AddressingParams, FullTableParams, TopologyParams};

    fn world() -> (Topology, PrefixAllocation, Workload) {
        let topo = TopologyParams::tiny().seed(2018).build();
        let alloc = PrefixAllocation::assign(&topo, AddressingParams::default())
            .deaggregate(&topo, FullTableParams::default());
        let workload = Workload::generate(&topo, &alloc, &WorkloadParams::default());
        (topo, alloc, workload)
    }

    #[test]
    fn schedule_covers_every_allocated_prefix_uniformly() {
        let (_, alloc, workload) = world();
        let schedule = full_table_schedule(&workload, &alloc);
        assert_eq!(schedule.len(), alloc.len());
        assert!(schedule.iter().all(|o| o.time == 0 && !o.withdraw));
        for o in &schedule {
            assert_eq!(alloc.origin_of(&o.prefix), Some(o.origin));
        }
    }

    #[test]
    fn sampling_preserves_whole_origins() {
        let (_, alloc, workload) = world();
        let schedule = full_table_schedule(&workload, &alloc);
        let sampled = sample_schedule(&schedule, schedule.len() / 3);
        assert!(!sampled.is_empty() && sampled.len() < schedule.len());
        // Every sampled origin keeps *all* of its prefixes, so the class
        // structure per kept origin is untouched.
        for o in &sampled {
            let total = alloc.prefixes_of(o.origin).len();
            let kept = sampled.iter().filter(|s| s.origin == o.origin).count();
            assert_eq!(kept, total, "origin {} was split", o.origin);
        }
        // No-op cases.
        assert_eq!(sample_schedule(&schedule, 0).len(), schedule.len());
        assert_eq!(sample_schedule(&schedule, usize::MAX).len(), schedule.len());
    }

    #[test]
    fn full_table_collapses_to_fewer_classes_than_prefixes() {
        let (topo, alloc, workload) = world();
        let report = run_full_table(&workload, &topo, &alloc, None, 2);
        assert!(report.converged);
        assert_eq!(report.prefixes, alloc.len());
        assert!(
            report.classes < report.prefixes,
            "deaggregated table must share classes: {} classes / {} prefixes",
            report.classes,
            report.prefixes
        );
        assert_eq!(report.class_sims, report.classes as u64);
        assert_eq!(
            report.class_sims + report.class_hits,
            report.prefixes as u64
        );
        assert!(report.hit_rate() > 0.0);
        assert!(
            report.tags.observations > 0,
            "collectors must see the table"
        );
        assert!(report.tags.tagged_observations <= report.tags.observations);
        // A fault-free campaign is never degraded.
        assert!(!report.degraded());
        assert!(report.diverged.is_empty() && report.failures.is_empty());
        assert_eq!(report.failure_summary(), "");
    }

    #[test]
    fn sampled_run_matches_full_run_on_kept_origins() {
        let (topo, alloc, workload) = world();
        let full = run_full_table(&workload, &topo, &alloc, None, 2);
        let sampled = run_full_table(&workload, &topo, &alloc, Some(alloc.len() / 2), 1);
        assert!(sampled.converged);
        assert!(sampled.prefixes < full.prefixes);
        assert!(sampled.classes <= full.classes);
    }
}
