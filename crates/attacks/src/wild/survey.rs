//! §7.6 — the automated blackhole-community survey: advertise a /24 from a
//! PEERING-like platform once per candidate blackhole community, probe from
//! a fixed Atlas vantage-point set before/after, and diff per-VP
//! responsiveness. A re-run checks repeatability, and baseline traceroutes
//! bound how many AS hops each effective community travelled.

use crate::wild::{attach_peering_platform, InjectionPlatform};
use bgpworms_dataplane::{trace, AtlasPlatform, Fib};
use bgpworms_routesim::{
    Campaign, CampaignSink, CompiledSim, Origination, RetainRoutes, SimSnapshot, Workload,
    WorkloadParams,
};
use bgpworms_topology::{addressing::AddressingParams, PrefixAllocation, TopologyParams};
use bgpworms_types::{Asn, Community, Prefix};
use std::collections::{BTreeMap, BTreeSet};

/// Survey parameters.
#[derive(Debug, Clone)]
pub struct SurveyParams {
    /// Topology to generate.
    pub topo: TopologyParams,
    /// Policy workload.
    pub workload: WorkloadParams,
    /// Number of Atlas vantage points ("200 … randomly chosen, but constant
    /// across all measurements").
    pub n_vps: usize,
    /// Cap on the number of candidate communities tested (the paper tests
    /// the 307 verified ones).
    pub max_communities: usize,
    /// Run the whole campaign a second time to confirm repeatability.
    pub verify_repeatability: bool,
}

impl Default for SurveyParams {
    fn default() -> Self {
        SurveyParams {
            topo: TopologyParams::small().seed(2018),
            workload: WorkloadParams::default(),
            n_vps: 50,
            max_communities: 307,
            verify_repeatability: true,
        }
    }
}

/// The survey outcome.
#[derive(Debug, Clone)]
pub struct SurveyReport {
    /// The injection platform.
    pub injector: InjectionPlatform,
    /// Candidate communities tested.
    pub communities_tested: usize,
    /// Communities that made at least one previously responsive VP
    /// unresponsive, with the lost VPs.
    pub effective: BTreeMap<Community, Vec<Asn>>,
    /// Union of affected vantage points.
    pub affected_vps: BTreeSet<Asn>,
    /// Total vantage points probed.
    pub total_vps: usize,
    /// Second round reproduced the first exactly (§7.6's two-day re-run).
    pub repeatable: Option<bool>,
    /// AS-hop distance from the injector to each effective community's
    /// target along the affected VPs' baseline traces:
    /// `1` = direct peer, `2`, `3`, …; `0` = target not on the path.
    pub hop_distribution: BTreeMap<usize, usize>,
}

impl SurveyReport {
    /// Fraction of tested communities that blackholed something.
    pub fn effective_fraction(&self) -> f64 {
        if self.communities_tested == 0 {
            return 0.0;
        }
        self.effective.len() as f64 / self.communities_tested as f64
    }

    /// Fraction of vantage points affected by at least one community.
    pub fn affected_vp_fraction(&self) -> f64 {
        if self.total_vps == 0 {
            return 0.0;
        }
        self.affected_vps.len() as f64 / self.total_vps as f64
    }
}

/// Builds the candidate corpus: the RFC 7999 well-known community plus
/// `ASN:666` for every transit AS — the analogue of the verified list of
/// Giotsas et al. (communities of ASes that actually run the service) mixed
/// with plausible-but-inert candidates (ASes without the service).
fn corpus(workload: &Workload, cap: usize) -> Vec<Community> {
    let mut out = vec![Community::BLACKHOLE];
    for (asn, cfg) in &workload.configs {
        if let Some(hi) = asn.as_u16() {
            if cfg.services.any() || cfg.services.blackhole.is_some() {
                out.push(Community::new(hi, 666));
            }
        }
    }
    out.truncate(cap);
    out
}

/// A compiled candidate-sweep session: the [`CompiledSim`] plus the
/// converged plain-announce baseline captured as a [`SimSnapshot`]. Every
/// candidate community replays as a *delta* against the baseline
/// ([`CompiledSim::run_delta_prefix`]), so a candidate costs its blast
/// radius, not a full Internet re-convergence.
pub struct SurveySession<'s> {
    /// The compiled session (retains only the experiment prefix).
    sim: CompiledSim<'s>,
    /// Converged state of the plain (untagged) announcement.
    baseline: SimSnapshot,
}

/// Reusable survey apparatus: a generated Internet plus an attached
/// PEERING-like injector, a fixed Atlas vantage-point set, baseline FIBs,
/// and baseline responsiveness — everything §7.6-style campaigns share.
/// The extended experiments ("likely" corpus, non-RTBH path-change
/// detection, fake-location injection) reuse this context.
pub struct SurveyContext {
    /// The generated topology (with the injector attached).
    pub topo: bgpworms_topology::Topology,
    /// Prefix ground truth.
    pub alloc: PrefixAllocation,
    /// The generated workload (with the injector registered).
    pub workload: Workload,
    /// The injection platform.
    pub injector: InjectionPlatform,
    /// The fixed Atlas vantage-point set.
    pub atlas: AtlasPlatform,
    /// The probe target inside the injector's prefix.
    pub target_addr: u32,
    /// FIB covering the vantage points' own prefixes (reverse paths).
    vp_fib: Fib,
    /// `vp_fib` plus the plain (untagged) announcement of the experiment
    /// prefix.
    base_fib: Fib,
    /// Baseline responsiveness per VP.
    before: BTreeMap<Asn, bool>,
}

impl SurveyContext {
    /// Builds the shared apparatus.
    pub fn build(params: &SurveyParams) -> Self {
        let mut topo = params.topo.build();
        let alloc = PrefixAllocation::assign(&topo, AddressingParams::default());
        let mut workload = Workload::generate(&topo, &alloc, &params.workload);
        let injector = attach_peering_platform(
            &mut topo,
            &mut workload,
            Asn::new(65_011),
            "100.64.1.0/24".parse().expect("valid"),
        );
        let atlas = AtlasPlatform::sample(&topo, &alloc, params.n_vps, 7);
        let target_addr = AtlasPlatform::target_in(injector.prefix);
        let p = Prefix::V4(injector.prefix);

        // Baseline FIB for VP prefixes (reverse paths), computed once —
        // streamed: the campaign folds each prefix's converged routes into
        // the FIB as forwarding actions and drops them, so the run never
        // holds a `Vec` of per-prefix route tables (at survey scale that
        // collection would dwarf the FIB itself).
        let mut vp_episodes = Vec::new();
        let mut retained: BTreeSet<Prefix> = BTreeSet::new();
        for &(vp, _) in &atlas.vantage_points {
            for prefix in alloc.prefixes_of(vp) {
                if prefix.is_v4() {
                    vp_episodes.push(Origination::announce(vp, *prefix, vec![]));
                    retained.insert(*prefix);
                }
            }
        }
        let vp_sim = workload
            .simulation(&topo)
            .retain(RetainRoutes::Prefixes(retained))
            .threads(4)
            .compile();
        let vp_fib = Campaign::new(&vp_sim).run(&vp_episodes, Fib::default).sink;

        // Baseline responsiveness with the plain /24.
        let p_sim = workload
            .simulation(&topo)
            .retain(RetainRoutes::Prefixes([p].into_iter().collect()))
            .compile();
        let base_run = Campaign::new(&p_sim).run(
            &[Origination::announce(injector.asn, p, vec![])],
            Fib::default,
        );
        drop((vp_sim, p_sim));
        let mut base_fib = vp_fib.clone();
        base_fib.merge(&base_run.sink);
        let before = atlas.ping_campaign(&base_fib, target_addr).responsive;

        SurveyContext {
            topo,
            alloc,
            workload,
            injector,
            atlas,
            target_addr,
            vp_fib,
            base_fib,
            before,
        }
    }

    /// Compiles the campaign session: a [`CompiledSim`] retaining only the
    /// experiment prefix, plus a [`SimSnapshot`] of the converged plain
    /// (untagged) announcement. Compile it **once** per campaign — the
    /// compile cost (config resolution, CSR, collector interning) *and*
    /// the baseline convergence are paid once; every candidate community
    /// then replays as a delta on the shared snapshot.
    pub fn session(&self) -> SurveySession<'_> {
        let p = Prefix::V4(self.injector.prefix);
        let sim = self
            .workload
            .simulation(&self.topo)
            .retain(RetainRoutes::Prefixes([p].into_iter().collect()))
            .compile();
        let (_, baseline) =
            sim.run_snapshot(&[Origination::announce(self.injector.asn, p, vec![])], p);
        SurveySession { sim, baseline }
    }

    /// The FIB when the experiment prefix is announced with `communities`
    /// (plain announce, then tagged re-announce — exactly the paper's
    /// step-1/step-3 sequence). The plain half is the session's converged
    /// baseline snapshot; only the tagged re-announce replays, as a delta
    /// re-convergence, and the perturbed outcome streams straight into
    /// forwarding actions.
    pub fn fib_with(&self, session: &SurveySession<'_>, communities: &[Community]) -> Fib {
        let p = Prefix::V4(self.injector.prefix);
        let outcome = session.sim.run_delta_prefix(
            &session.baseline,
            &[Origination::announce(self.injector.asn, p, communities.to_vec()).at(300)],
        );
        let mut tagged = Fib::default();
        tagged.fold(p, outcome);
        let mut fib = self.vp_fib.clone();
        fib.merge(&tagged);
        fib
    }

    /// One campaign round: per candidate community, the set of vantage
    /// points that were responsive at baseline but lost reachability. The
    /// session compiles (and its baseline converges) once; every candidate
    /// is one more delta replay.
    pub fn blackhole_round(&self, candidates: &[Community]) -> BTreeMap<Community, Vec<Asn>> {
        let session = self.session();
        let mut out = BTreeMap::new();
        for &c in candidates {
            let fib = self.fib_with(&session, &[c]);
            let campaign = self.atlas.ping_campaign(&fib, self.target_addr);
            let lost: Vec<Asn> = campaign
                .responsive
                .iter()
                .filter(|(vp, &ok)| !ok && self.before.get(vp).copied().unwrap_or(false))
                .map(|(&vp, _)| vp)
                .collect();
            out.insert(c, lost);
        }
        out
    }

    /// Per-VP forwarding paths toward the experiment target when announced
    /// with `communities` (empty = baseline). Only delivered traces are
    /// returned — the non-RTBH detection signal is a *path change*, not a
    /// reachability loss.
    pub fn trace_paths(
        &self,
        session: &SurveySession<'_>,
        communities: &[Community],
    ) -> BTreeMap<Asn, Vec<Asn>> {
        let fib = if communities.is_empty() {
            self.base_fib.clone()
        } else {
            self.fib_with(session, communities)
        };
        let mut out = BTreeMap::new();
        for &(vp, _) in &self.atlas.vantage_points {
            let t = trace(&fib, vp, self.target_addr);
            if t.delivered() {
                out.insert(vp, t.path);
            }
        }
        out
    }

    /// Baseline AS-hop distance from `vp`'s forwarding path to `target_as`
    /// (0 = not on the path).
    pub fn baseline_hops_to(&self, vp: Asn, target_as: Asn) -> usize {
        let t = trace(&self.base_fib, vp, self.target_addr);
        t.path
            .iter()
            .position(|&a| a == target_as)
            .map(|idx| (t.path.len() - 1).saturating_sub(idx))
            .unwrap_or(0)
    }

    /// Total vantage points.
    pub fn total_vps(&self) -> usize {
        self.atlas.vantage_points.len()
    }
}

/// Runs the survey.
pub fn run(params: &SurveyParams) -> SurveyReport {
    let ctx = SurveyContext::build(params);
    let candidates = corpus(&ctx.workload, params.max_communities);

    let round1 = ctx.blackhole_round(&candidates);
    let repeatable = params
        .verify_repeatability
        .then(|| ctx.blackhole_round(&candidates) == round1);

    let mut effective: BTreeMap<Community, Vec<Asn>> = BTreeMap::new();
    let mut affected_vps: BTreeSet<Asn> = BTreeSet::new();
    for (c, lost) in &round1 {
        if !lost.is_empty() {
            affected_vps.extend(lost.iter().copied());
            effective.insert(*c, lost.clone());
        }
    }

    // Hop lower bound via baseline traceroutes (naïve IP-to-AS is exact in
    // our closed world; the paper's was not, hence their 75 % not-on-path).
    let mut hop_distribution: BTreeMap<usize, usize> = BTreeMap::new();
    for (c, vps) in &effective {
        for vp in vps {
            let hops = ctx.baseline_hops_to(*vp, c.owner());
            *hop_distribution.entry(hops).or_insert(0) += 1;
        }
    }

    SurveyReport {
        injector: ctx.injector,
        communities_tested: candidates.len(),
        effective,
        affected_vps,
        total_vps: ctx.total_vps(),
        repeatable,
        hop_distribution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> SurveyParams {
        SurveyParams {
            topo: TopologyParams::tiny().seed(2018),
            workload: WorkloadParams {
                blackhole_service_prob: 0.8,
                ..WorkloadParams::default()
            },
            n_vps: 12,
            max_communities: 12,
            verify_repeatability: true,
        }
    }

    #[test]
    fn survey_finds_effective_communities_and_is_repeatable() {
        let report = run(&quick_params());
        assert!(report.communities_tested > 0);
        assert!(
            !report.effective.is_empty(),
            "at least one community blackholes a VP"
        );
        assert!(
            report.effective_fraction() < 1.0,
            "not every candidate acts"
        );
        assert!(!report.affected_vps.is_empty());
        assert!(report.affected_vp_fraction() <= 1.0);
        assert_eq!(report.repeatable, Some(true), "deterministic re-run");
    }

    #[test]
    fn hop_distribution_counts_every_affected_pair() {
        let report = run(&quick_params());
        let pairs: usize = report.effective.values().map(Vec::len).sum();
        let counted: usize = report.hop_distribution.values().sum();
        assert_eq!(pairs, counted);
    }
}
