//! §7.5 — route manipulation at a real (generated) IXP route server: the
//! injector, a direct member, first announces with an announce-to
//! community, then adds the conflicting suppress community; the evaluation
//! order decides, and the attackee member silently loses the route.

use crate::wild::InjectionPlatform;
use bgpworms_routesim::{Origination, RetainRoutes, Workload, WorkloadParams};
use bgpworms_topology::{addressing::AddressingParams, PrefixAllocation, Tier, TopologyParams};
use bgpworms_types::{Asn, Community, Prefix};

/// Report of the route-server wild experiment.
#[derive(Debug, Clone)]
pub struct RouteServerWildReport {
    /// The injection platform (a direct member of the route server).
    pub injector: InjectionPlatform,
    /// The route server used.
    pub route_server: Asn,
    /// The attackee member.
    pub attackee: Asn,
    /// The attackee had the route with only the announce community.
    pub route_present_before: bool,
    /// The attackee lost the route once the conflicting suppress community
    /// was added.
    pub route_absent_after: bool,
}

impl RouteServerWildReport {
    /// The conflict resolved to suppression (suppress-first order).
    pub fn succeeded(&self) -> bool {
        self.route_present_before && self.route_absent_after
    }
}

/// Runs the experiment.
pub fn run(
    topo_params: &TopologyParams,
    workload_params: &WorkloadParams,
) -> Option<RouteServerWildReport> {
    let mut topo = topo_params.build();
    let alloc = PrefixAllocation::assign(&topo, AddressingParams::default());
    let mut workload = Workload::generate(&topo, &alloc, workload_params);

    // Pick the first route server, then attach a dedicated injector that
    // announces *only* through the route-server session — mirroring how
    // PEERING scopes an experiment announcement to one PoP.
    let route_server = topo
        .ases()
        .find(|n| n.tier == Tier::RouteServer)
        .map(|n| n.asn)?;
    let injector = {
        let asn = Asn::new(65_011);
        let prefix: bgpworms_types::Ipv4Prefix = "100.64.1.0/24".parse().expect("valid");
        topo.add_simple(asn, Tier::Stub);
        topo.add_edge(route_server, asn, bgpworms_topology::EdgeKind::PeerToPeer);
        workload
            .configs
            .insert(asn, bgpworms_routesim::RouterConfig::defaults(asn));
        workload.irr.register(Prefix::V4(prefix), asn);
        workload.rpki.register(Prefix::V4(prefix), asn);
        InjectionPlatform { asn, prefix }
    };
    let attackee = topo.peers_of(route_server).find(|m| *m != injector.asn)?;

    let rs16 = route_server.as_u16().expect("small");
    let attackee16 = attackee.as_u16().expect("small");
    let announce_to = Community::new(rs16, attackee16);
    let suppress_to = Community::new(0, attackee16);
    let p = Prefix::V4(injector.prefix);

    // One compiled session, two episode schedules.
    let sim = workload
        .simulation(&topo)
        .retain(RetainRoutes::Prefixes([p].into_iter().collect()))
        .compile();

    // Step 1: announce-to only.
    let before = sim.run(&[Origination::announce(injector.asn, p, vec![announce_to])]);
    let route_present_before = before.route_at(attackee, &p).is_some();

    // Step 2: announce-to + conflicting suppress-to.
    let after = sim.run(&[Origination::announce(
        injector.asn,
        p,
        vec![announce_to, suppress_to],
    )]);
    let route_absent_after = after.route_at(attackee, &p).is_none();

    Some(RouteServerWildReport {
        injector,
        route_server,
        attackee,
        route_present_before,
        route_absent_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicting_communities_suppress_the_attackee_route() {
        let report = run(
            &TopologyParams::small().seed(17),
            &WorkloadParams::default(),
        )
        .expect("route server found");
        assert!(
            report.route_present_before,
            "announce-to community delivers the route first: {report:?}"
        );
        assert!(
            report.route_absent_after,
            "suppress-first evaluation removes it: {report:?}"
        );
        assert!(report.succeeded());
    }

    #[test]
    fn attackee_differs_from_injector() {
        let report = run(
            &TopologyParams::small().seed(18),
            &WorkloadParams::default(),
        )
        .expect("route server found");
        assert_ne!(report.attackee, report.injector.asn);
        assert_ne!(report.route_server, report.attackee);
    }
}
