//! The §7.6/§7.7 future-work experiments, automated:
//!
//! * **"Likely" corpus survey** — the paper tested the 307 *verified*
//!   blackhole communities and deferred the 115 *likely* (statistically
//!   inferred, unverified) ones. Here both corpora run through the same
//!   campaign; the comparison quantifies how much confidence the
//!   verification step adds.
//! * **Non-RTBH community survey** — *"Such experiments require more
//!   complex inference as the resulting behavior can be subtle and hard to
//!   detect (e.g., a path change) as compared to RTBH where reachability is
//!   a binary test."* The steering survey implements that inference:
//!   per prepend community, diff every vantage point's traceroute path
//!   between the untagged and tagged announcements.
//! * **Fake-location injection (§7.7)** — announce the experiment prefix
//!   tagged with the location communities of two different remote ASes and
//!   count the collectors that observe the contradiction.

use crate::wild::survey::{SurveyContext, SurveyParams};
use bgpworms_routesim::{Campaign, CampaignSink, Origination, PrefixOutcome, RetainRoutes};
use bgpworms_types::{Asn, Community, Prefix};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of surveying one corpus of candidate blackhole communities.
#[derive(Debug, Clone, Default)]
pub struct CorpusOutcome {
    /// Candidates tested.
    pub tested: usize,
    /// Candidates that blackholed ≥ 1 vantage point.
    pub effective: usize,
    /// Union of affected vantage points.
    pub affected_vps: BTreeSet<Asn>,
}

impl CorpusOutcome {
    /// Fraction of candidates that acted.
    pub fn effective_fraction(&self) -> f64 {
        if self.tested == 0 {
            0.0
        } else {
            self.effective as f64 / self.tested as f64
        }
    }
}

/// Verified-vs-likely comparison (§7.6 future work).
#[derive(Debug, Clone, Default)]
pub struct LikelySurveyReport {
    /// The corpus of communities whose owners verifiably run the service.
    pub verified: CorpusOutcome,
    /// The "likely" corpus: blackhole-shaped candidates without
    /// verification — `ASN:666` of transits with *no* RTBH service, plus
    /// lookalike values (999, 9999) on service providers.
    pub likely: CorpusOutcome,
}

/// Runs both corpora through the §7.6 campaign.
pub fn likely_survey(params: &SurveyParams) -> LikelySurveyReport {
    let ctx = SurveyContext::build(params);

    let mut verified: Vec<Community> = vec![Community::BLACKHOLE];
    let mut likely: Vec<Community> = Vec::new();
    for (asn, cfg) in &ctx.workload.configs {
        let Some(hi) = asn.as_u16() else { continue };
        if !ctx.topo.is_transit_provider(*asn) {
            continue;
        }
        match &cfg.services.blackhole {
            Some(bh) => {
                verified.push(Community::new(hi, bh.value));
                // Lookalike values on a genuine provider: plausible, wrong.
                likely.push(Community::new(hi, 999));
            }
            None => likely.push(Community::new(hi, 666)),
        }
    }
    verified.truncate(params.max_communities);
    likely.truncate(params.max_communities);

    let score = |candidates: &[Community]| {
        let round = ctx.blackhole_round(candidates);
        let mut outcome = CorpusOutcome {
            tested: candidates.len(),
            ..CorpusOutcome::default()
        };
        for lost in round.values() {
            if !lost.is_empty() {
                outcome.effective += 1;
                outcome.affected_vps.extend(lost.iter().copied());
            }
        }
        outcome
    };

    LikelySurveyReport {
        verified: score(&verified),
        likely: score(&likely),
    }
}

/// Outcome of the non-RTBH (steering) survey.
#[derive(Debug, Clone, Default)]
pub struct SteeringSurveyReport {
    /// Prepend communities tested.
    pub tested: usize,
    /// Communities that changed ≥ 1 vantage point's forwarding path,
    /// with the number of changed VPs.
    pub effective: BTreeMap<Community, usize>,
    /// Vantage points that lost reachability during any steering test —
    /// expected 0: steering moves paths, it does not drop traffic, which is
    /// exactly why the binary RTBH test cannot detect it.
    pub reachability_lost: usize,
    /// Total vantage points.
    pub total_vps: usize,
}

impl SteeringSurveyReport {
    /// Fraction of tested communities with a visible path change.
    pub fn effective_fraction(&self) -> f64 {
        if self.tested == 0 {
            0.0
        } else {
            self.effective.len() as f64 / self.tested as f64
        }
    }
}

/// Runs the non-RTBH survey: per prepend community, diff per-VP traceroute
/// paths between untagged and tagged announcements.
pub fn steering_survey(params: &SurveyParams) -> SteeringSurveyReport {
    let ctx = SurveyContext::build(params);

    // Candidates: every prepend community of a transit with the service.
    let mut candidates: Vec<Community> = Vec::new();
    for (asn, cfg) in &ctx.workload.configs {
        let Some(hi) = asn.as_u16() else { continue };
        for &value in cfg.services.prepend.keys() {
            candidates.push(Community::new(hi, value));
        }
    }
    candidates.truncate(params.max_communities);

    // One compiled session serves the baseline and every candidate run.
    let session = ctx.session();
    let baseline = ctx.trace_paths(&session, &[]);
    let mut report = SteeringSurveyReport {
        tested: candidates.len(),
        total_vps: ctx.total_vps(),
        ..SteeringSurveyReport::default()
    };
    for &c in &candidates {
        let tagged = ctx.trace_paths(&session, &[c]);
        let mut changed = 0usize;
        for (vp, base_path) in &baseline {
            match tagged.get(vp) {
                Some(path) if path != base_path => changed += 1,
                Some(_) => {}
                None => report.reachability_lost += 1,
            }
        }
        if changed > 0 {
            report.effective.insert(c, changed);
        }
    }
    report
}

/// Outcome of the §7.7 fake-location injection.
#[derive(Debug, Clone, Default)]
pub struct LocationInjectionReport {
    /// The two location communities injected (different owners —
    /// "reception on different continents").
    pub injected: Vec<Community>,
    /// Collectors that observed the prefix at all.
    pub collectors_observing: usize,
    /// Collectors that observed the prefix with *both* contradictory tags
    /// intact.
    pub collectors_with_contradiction: usize,
    /// Total collectors in the workload.
    pub total_collectors: usize,
}

/// Injects contradictory location communities and counts how many
/// collectors see the contradiction (the paper "observe\[d\] the prefix at
/// remote collectors labeled with communities indicating reception on
/// different continents").
///
/// This is the paper's literal experiment: tags of two *different* remote
/// ASes, measuring observability. The passively *detectable* variant —
/// one AS claiming two ingress locations at once — is covered by the
/// monitor's `ContradictoryLocation` detector and its integration test.
pub fn location_injection(params: &SurveyParams) -> Option<LocationInjectionReport> {
    let ctx = SurveyContext::build(params);

    // Two distinct transits that tag ingress location: fake "LAX" from one
    // and "FRA" from the other (Fig 1's buckets are 201..=204).
    let taggers: Vec<Asn> = ctx
        .workload
        .configs
        .values()
        .filter(|c| c.tagging.tag_ingress_location && c.asn.as_u16().is_some())
        .map(|c| c.asn)
        .take(2)
        .collect();
    let [a, b] = taggers.as_slice() else {
        return None;
    };
    let injected = vec![
        Community::new(a.as_u16().expect("filtered"), 201),
        Community::new(b.as_u16().expect("filtered"), 203),
    ];

    let p = Prefix::V4(ctx.injector.prefix);
    let sim = ctx
        .workload
        .simulation(&ctx.topo)
        .retain(RetainRoutes::None)
        .compile();

    // Streaming fold: per collector, did it see the prefix at all / with
    // both contradictory tags? The observation lists themselves never
    // outlive the fold.
    struct ContradictionSink<'c> {
        prefix: Prefix,
        injected: &'c [Community],
        // Indexed by collector position in the compiled spec.
        saw_prefix: Vec<bool>,
        saw_both: Vec<bool>,
    }

    impl CampaignSink for ContradictionSink<'_> {
        fn fold(&mut self, _prefix: Prefix, outcome: PrefixOutcome) {
            for (ci, observations) in outcome.observations.iter().enumerate() {
                for obs in observations {
                    if obs.prefix != self.prefix {
                        continue;
                    }
                    if let Some(route) = &obs.route {
                        self.saw_prefix[ci] = true;
                        if self.injected.iter().all(|c| route.has_community(*c)) {
                            self.saw_both[ci] = true;
                        }
                    }
                }
            }
        }

        fn merge(&mut self, other: Self) {
            for (a, b) in self.saw_prefix.iter_mut().zip(other.saw_prefix) {
                *a |= b;
            }
            for (a, b) in self.saw_both.iter_mut().zip(other.saw_both) {
                *a |= b;
            }
        }
    }

    let n_collectors = sim.collector_names().len();
    let run = Campaign::new(&sim).run(
        &[Origination::announce(ctx.injector.asn, p, injected.clone())],
        || ContradictionSink {
            prefix: p,
            injected: &injected,
            saw_prefix: vec![false; n_collectors],
            saw_both: vec![false; n_collectors],
        },
    );

    Some(LocationInjectionReport {
        collectors_observing: run.sink.saw_prefix.iter().filter(|&&b| b).count(),
        collectors_with_contradiction: run.sink.saw_both.iter().filter(|&&b| b).count(),
        total_collectors: ctx.workload.collectors.len(),
        injected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_routesim::WorkloadParams;
    use bgpworms_topology::TopologyParams;

    fn quick_params() -> SurveyParams {
        SurveyParams {
            topo: TopologyParams::tiny().seed(8),
            workload: WorkloadParams {
                blackhole_service_prob: 0.8,
                steering_service_prob: 0.7,
                location_tag_prob: 0.6,
                ..WorkloadParams::default()
            },
            n_vps: 12,
            max_communities: 40,
            verify_repeatability: false,
        }
    }

    #[test]
    fn verified_corpus_outperforms_likely() {
        let report = likely_survey(&quick_params());
        assert!(report.verified.tested > 0);
        assert!(report.likely.tested > 0);
        assert!(
            report.verified.effective_fraction() > report.likely.effective_fraction(),
            "verification must add confidence: verified {:.2} vs likely {:.2}",
            report.verified.effective_fraction(),
            report.likely.effective_fraction()
        );
        // In the closed world, unverified candidates are inert by
        // construction (no AS acts on a service it does not run).
        assert_eq!(report.likely.effective, 0);
    }

    #[test]
    fn steering_changes_paths_without_reachability_loss() {
        let report = steering_survey(&quick_params());
        assert!(report.tested > 0);
        assert!(
            !report.effective.is_empty(),
            "at least one prepend community moves a path"
        );
        assert_eq!(
            report.reachability_lost, 0,
            "steering is invisible to the binary reachability test"
        );
        for (&c, &changed) in &report.effective {
            assert!(changed >= 1, "{c} marked effective without changed VPs");
        }
    }

    #[test]
    fn location_contradiction_reaches_collectors() {
        let report = location_injection(&quick_params()).expect("two location taggers exist");
        assert_eq!(report.injected.len(), 2);
        assert_ne!(
            report.injected[0].owner(),
            report.injected[1].owner(),
            "tags must name different ASes"
        );
        assert!(report.collectors_observing > 0, "prefix visible somewhere");
        assert!(
            report.collectors_with_contradiction > 0,
            "the contradiction propagates to at least one collector"
        );
        assert!(report.collectors_with_contradiction <= report.collectors_observing);
    }
}
