//! §7.3 — RTBH in the wild: blackhole a /24 via a provider two AS hops from
//! the injection point, and validate on both planes (looking glass next-hop
//! to null; Atlas probes losing reachability).
//!
//! Mirrors the paper's method: first infer community propagation from the
//! injection point (the research network announces from a single location;
//! only community-propagating upstreams are useful), then select a target
//! that "both supports RTBH and offers a public looking glass" — i.e. a
//! candidate where the effect is observable — and validate before/after
//! with Atlas pings plus the target's looking glass.

use crate::wild::InjectionPlatform;
use bgpworms_dataplane::{AtlasPlatform, Fib};
use bgpworms_routesim::{
    Campaign, CampaignSink, Origination, RetainRoutes, RouterConfig, Workload, WorkloadParams,
};
use bgpworms_topology::{
    addressing::AddressingParams, EdgeKind, PrefixAllocation, Tier, Topology, TopologyParams,
};
use bgpworms_types::{Asn, Community, Prefix};
use std::collections::BTreeSet;

/// Outcome of one RTBH wild experiment.
#[derive(Debug, Clone)]
pub struct RtbhWildReport {
    /// The injection platform.
    pub injector: InjectionPlatform,
    /// The chosen community target (RTBH provider ≥ 2 hops away).
    pub target: Asn,
    /// AS-hop distance from the injector to the target.
    pub target_distance: usize,
    /// Whether this was the hijack variant.
    pub hijack: bool,
    /// Looking glass at the target showed the null route.
    pub target_blackholed: bool,
    /// Vantage points responsive before the blackhole announcement.
    pub responsive_before: usize,
    /// Vantage points responsive after.
    pub responsive_after: usize,
    /// Vantage points that lost reachability.
    pub lost_vps: Vec<Asn>,
    /// Total vantage points.
    pub total_vps: usize,
}

impl RtbhWildReport {
    /// The experiment succeeded: target null-routed and the data plane
    /// confirms at least one vantage point lost reachability.
    pub fn succeeded(&self) -> bool {
        self.target_blackholed && !self.lost_vps.is_empty()
    }
}

/// True if `asn`'s egress policy forwards foreign communities toward its
/// providers — the condition the §7.2 propagation probe establishes before
/// the blackhole experiment targets anything beyond the first hop.
fn forwards_foreign_upward(workload: &Workload, asn: Asn) -> bool {
    use bgpworms_routesim::CommunityPropagationPolicy as P;
    workload
        .configs
        .get(&asn)
        .map(|c| {
            c.sends_communities()
                && match &c.propagation {
                    P::ForwardAll | P::StripOwn => true,
                    P::StripAll | P::StripUnknown | P::ScopedToReceiver => false,
                    P::Selective { to_providers, .. } => *to_providers,
                }
        })
        .unwrap_or(false)
}

/// Candidate targets: RTBH-offering providers of the (community-
/// propagating) upstream, i.e. two AS hops from the injector.
fn candidate_targets(topo: &Topology, workload: &Workload, upstream: Asn) -> Vec<(Asn, usize)> {
    let mut out: Vec<(Asn, usize)> = topo
        .providers_of(upstream)
        .filter(|p2| {
            workload
                .configs
                .get(p2)
                .and_then(|c| c.services.blackhole.as_ref())
                // The experiment announces a /24, so the service must accept
                // /24 blackholes and act for non-customers.
                .map(|bh| bh.scope == bgpworms_routesim::ActScope::Any && bh.min_prefix_len <= 24)
                .unwrap_or(false)
        })
        .map(|p2| (p2, 2))
        .collect();
    // Fall back to the upstream itself when it offers the service.
    if workload
        .configs
        .get(&upstream)
        .and_then(|c| c.services.blackhole.as_ref())
        .is_some()
    {
        out.push((upstream, 1));
    }
    out
}

/// Runs the experiment. With `hijack`, the /24 belongs to a victim stub and
/// the attacker registers an IRR route object first (§7.3's circumvention).
pub fn run(
    topo_params: &TopologyParams,
    workload_params: &WorkloadParams,
    hijack: bool,
    n_vps: usize,
) -> Option<RtbhWildReport> {
    let mut topo = topo_params.build();
    let alloc = PrefixAllocation::assign(&topo, AddressingParams::default());
    let mut workload = Workload::generate(&topo, &alloc, workload_params);

    // Single-homed injector behind a community-propagating transit (the
    // paper's research network announced from one physical location; only
    // the propagating upstream mattered).
    let upstream = topo
        .ases()
        .filter(|n| n.tier == Tier::Transit)
        .map(|n| n.asn)
        .find(|a| forwards_foreign_upward(&workload, *a))?;
    let injector_asn = Asn::new(65_010);
    let injector_prefix: bgpworms_types::Ipv4Prefix = "100.64.0.0/24".parse().expect("valid");
    topo.add_simple(injector_asn, Tier::Stub);
    topo.add_edge(upstream, injector_asn, EdgeKind::ProviderToCustomer);
    workload
        .configs
        .insert(injector_asn, RouterConfig::defaults(injector_asn));
    workload
        .irr
        .register(Prefix::V4(injector_prefix), injector_asn);
    workload
        .rpki
        .register(Prefix::V4(injector_prefix), injector_asn);
    let injector = InjectionPlatform {
        asn: injector_asn,
        prefix: injector_prefix,
    };

    // The blackholed /24: the injector's own (non-hijack) or a /24 cut from
    // a victim stub's space (hijack).
    let bh_prefix = if hijack {
        let victim = topo.ases().find(|n| {
            n.tier == Tier::Stub
                && n.asn != injector.asn
                && alloc.prefixes_of(n.asn).iter().any(|p| p.as_v4().is_some())
        })?;
        let parent = alloc
            .prefixes_of(victim.asn)
            .iter()
            .find_map(|p| p.as_v4())?;
        let sub = parent.subnets(24).ok()?.first().copied()?;
        // §7.3: the hijack "required updating the IRR".
        workload.irr.register(Prefix::V4(sub), injector.asn);
        sub
    } else {
        injector.prefix
    };

    // Vantage points + their prefixes (for reverse paths).
    let atlas = AtlasPlatform::sample(&topo, &alloc, n_vps, 7);
    let mut episodes: Vec<Origination> = Vec::new();
    let mut retained: BTreeSet<Prefix> = BTreeSet::new();
    for &(vp, _) in &atlas.vantage_points {
        for prefix in alloc.prefixes_of(vp) {
            if prefix.is_v4() {
                episodes.push(Origination::announce(vp, *prefix, vec![]));
                retained.insert(*prefix);
            }
        }
    }
    let p = Prefix::V4(bh_prefix);
    retained.insert(p);
    let target_addr = AtlasPlatform::target_in(bh_prefix);

    // One session for the whole experiment: the baseline and every
    // candidate target replay different episode schedules on it.
    let sim = workload
        .simulation(&topo)
        .retain(RetainRoutes::Prefixes(retained))
        .compile();

    // Baseline: the vantage points' own prefixes stream straight into
    // forwarding actions, while the plain announcement of the blackholed
    // /24 converges once and is captured as a snapshot — every candidate
    // target below replays against it as a delta re-convergence.
    let vp_fib = Campaign::new(&sim).run(&episodes, Fib::default).sink;
    let (_, baseline) = sim.run_snapshot(&[Origination::announce(injector.asn, p, vec![])], p);
    let mut base_fib = vp_fib.clone();
    base_fib.fold(p, baseline.baseline_outcome().clone());
    let before = atlas.ping_campaign(&base_fib, target_addr);

    // Try each candidate target until the effect is demonstrable (the
    // paper likewise *selected* a provider where validation was possible).
    // Each candidate is one delta replay on the shared baseline snapshot —
    // it costs the community's blast radius, not a fresh Internet.
    let mut last: Option<RtbhWildReport> = None;
    for (target, target_distance) in candidate_targets(&topo, &workload, upstream) {
        let target_bh = Community::new(target.as_u16().expect("small"), 666);
        let outcome = sim.run_delta_prefix(
            &baseline,
            &[Origination::announce(injector.asn, p, vec![target_bh]).at(600)],
        );
        let target_blackholed = outcome
            .final_routes
            .as_ref()
            .and_then(|finals| finals.get(&target))
            .map(|route| route.blackholed)
            .unwrap_or(false);
        let mut attacked_fib = vp_fib.clone();
        attacked_fib.fold(p, outcome);
        let after = atlas.ping_campaign(&attacked_fib, target_addr);

        let report = RtbhWildReport {
            injector,
            target,
            target_distance,
            hijack,
            target_blackholed,
            responsive_before: before.responsive_count(),
            responsive_after: after.responsive_count(),
            lost_vps: before.lost_vps(&after),
            total_vps: atlas.vantage_points.len(),
        };
        if report.succeeded() {
            return Some(report);
        }
        last = Some(report);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> (TopologyParams, WorkloadParams) {
        // High service density so a target is always found in the small
        // test topology.
        let wp = WorkloadParams {
            blackhole_service_prob: 0.9,
            ..WorkloadParams::default()
        };
        (TopologyParams::small().seed(11), wp)
    }

    #[test]
    fn non_hijack_rtbh_blackholes_in_the_wild() {
        let (tp, wp) = params();
        let report = run(&tp, &wp, false, 40).expect("target found");
        assert!(report.target_blackholed, "looking glass shows null route");
        assert!(
            report.responsive_after < report.responsive_before,
            "Atlas loses vantage points ({} -> {})",
            report.responsive_before,
            report.responsive_after
        );
        assert!(report.succeeded());
        assert!(report.target_distance >= 1);
    }

    #[test]
    fn hijack_rtbh_with_irr_update_succeeds() {
        let (tp, wp) = params();
        let report = run(&tp, &wp, true, 40).expect("target found");
        assert!(report.hijack);
        assert!(
            report.target_blackholed,
            "hijacked /24 blackholed at target"
        );
        assert!(report.succeeded());
    }
}
