//! §7.4 — traffic steering in the wild: prepend and local-pref communities
//! sent through an intermediate *customer* of the target (business
//! relationships gate steering services; the paper could only trigger them
//! along customer chains).

use crate::wild::{attach_peering_platform, InjectionPlatform};
use bgpworms_dataplane::LookingGlass;
use bgpworms_routesim::{
    ActScope, Origination, RetainRoutes, RouterConfig, Workload, WorkloadParams,
};
use bgpworms_topology::{addressing::AddressingParams, PrefixAllocation, Topology, TopologyParams};
use bgpworms_types::{Asn, Community, Prefix};

/// Report of the steering wild experiment.
#[derive(Debug, Clone)]
pub struct SteeringWildReport {
    /// The injection platform.
    pub injector: InjectionPlatform,
    /// The community target offering steering services.
    pub target: Asn,
    /// The intermediate customer of the target on the injection path.
    pub intermediate: Asn,
    /// Collector observations whose AS path shows the target prepended
    /// (≥ 2 consecutive occurrences) during the prepend attack.
    pub prepended_observations: usize,
    /// Collector observations of the prefix during the attack (any path).
    pub total_observations: usize,
    /// Local-pref at the target before the local-pref community.
    pub local_pref_before: u32,
    /// Local-pref at the target after.
    pub local_pref_after: u32,
}

impl SteeringWildReport {
    /// Prepend experiment succeeded: prepended paths visible at collectors.
    pub fn prepend_succeeded(&self) -> bool {
        self.prepended_observations > 0
    }

    /// Local-pref experiment succeeded: the target demoted the route.
    pub fn local_pref_succeeded(&self) -> bool {
        self.local_pref_after < self.local_pref_before
    }
}

/// All `(target, intermediate)` pairs where the intermediate is
/// simultaneously a provider (or peer) of the injector and a customer of a
/// steering target. The paper's experiments retried setups until one
/// produced collector-visible effects, so the caller gets every candidate
/// in deterministic order rather than only the first.
fn find_steering_paths(topo: &Topology, workload: &Workload, injector: Asn) -> Vec<(Asn, Asn)> {
    let firsts: Vec<Asn> = topo
        .providers_of(injector)
        .chain(topo.peers_of(injector))
        .collect();
    let mut out = Vec::new();
    for mid in &firsts {
        for target in topo.providers_of(*mid) {
            let offers = workload
                .configs
                .get(&target)
                .map(|c| !c.services.prepend.is_empty() && !c.services.local_pref.is_empty())
                .unwrap_or(false);
            if offers {
                out.push((target, *mid));
            }
        }
    }
    out
}

/// Runs both steering experiments (prepend, then local-pref).
pub fn run(
    topo_params: &TopologyParams,
    workload_params: &WorkloadParams,
) -> Option<SteeringWildReport> {
    let mut topo = topo_params.build();
    let alloc = PrefixAllocation::assign(&topo, AddressingParams::default());
    let mut workload = Workload::generate(&topo, &alloc, workload_params);

    let injector = attach_peering_platform(
        &mut topo,
        &mut workload,
        Asn::new(65_011),
        "100.64.1.0/24".parse().expect("valid"),
    );

    let candidates = find_steering_paths(&topo, &workload, injector.asn);
    let p = Prefix::V4(injector.prefix);

    // Try every candidate pair until one produces the canonical outcome;
    // the strongest partial result seen so far stays the fallback, so the
    // report is never empty when a steering path exists at all.
    let mut best: Option<SteeringWildReport> = None;
    for (target, intermediate) in candidates {
        // Steering services in the wild act on customer announcements; the
        // intermediate *is* the target's customer, so CustomersOnly works.
        // The override lives only in this candidate's spec (configure
        // copy-on-writes the config map); the shared workload stays
        // untouched.
        let mut target_cfg = workload
            .configs
            .get(&target)
            .cloned()
            .unwrap_or_else(|| RouterConfig::defaults(target));
        target_cfg.services.steering_scope = ActScope::CustomersOnly;

        let target16 = target.as_u16().expect("small");
        let prepend2 = Community::new(target16, 422);
        let fallback = Community::new(target16, 70);

        // One compiled session per candidate config; all three runs
        // (prepend, local-pref baseline, local-pref tagged) replay on it.
        let sim = workload
            .simulation(&topo)
            .retain(RetainRoutes::Prefixes([p].into_iter().collect()))
            .configure(target_cfg)
            .compile();

        // --- Prepend experiment. ---
        let attacked = sim.run(&[Origination::announce(injector.asn, p, vec![prepend2])]);
        let mut prepended = 0usize;
        let mut total = 0usize;
        for observations in attacked.observations.values() {
            for obs in observations {
                let Some(route) = &obs.route else { continue };
                total += 1;
                let raw = route.path.to_vec();
                let has_prepend = raw.windows(2).any(|w| w[0] == target && w[1] == target);
                if has_prepend {
                    prepended += 1;
                }
            }
        }

        // --- Local-pref experiment (baseline, then tagged). The baseline
        // run captures a converged snapshot, so the tagged announcement is
        // a delta re-convergence instead of a second full run — the A/B
        // pair costs roughly one convergence plus the community's blast
        // radius. ---
        let (base, snap) = sim.run_snapshot(&[Origination::announce(injector.asn, p, vec![])], p);
        let lp_before = LookingGlass::new(&base)
            .route(target, &p)
            .map(|r| r.local_pref)
            .unwrap_or(0);
        let tagged = sim.run_delta(
            &snap,
            &[Origination::announce(injector.asn, p, vec![fallback]).at(600)],
        );
        let lp_after = LookingGlass::new(&tagged)
            .route(target, &p)
            .map(|r| r.local_pref)
            .unwrap_or(0);

        let report = SteeringWildReport {
            injector,
            target,
            intermediate,
            prepended_observations: prepended,
            total_observations: total,
            local_pref_before: lp_before,
            local_pref_after: lp_after,
        };

        // Canonical success: prepending visible at collectors AND the
        // local-pref community demoted the route to the advertised service
        // value (70). A candidate where the demotion merely flipped the
        // best path to a peer route shows the service acted but is a
        // weaker observation, so the search keeps looking — keeping the
        // strongest partial result (most effects observed) as fallback.
        if report.prepend_succeeded() && report.local_pref_after == 70 {
            return Some(report);
        }
        let strength = |r: &SteeringWildReport| {
            (
                usize::from(r.prepend_succeeded()),
                usize::from(r.local_pref_succeeded()),
                r.prepended_observations,
            )
        };
        if best
            .as_ref()
            .is_none_or(|b| strength(&report) > strength(b))
        {
            best = Some(report);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> (TopologyParams, WorkloadParams) {
        let wp = WorkloadParams {
            steering_service_prob: 0.9,
            ..WorkloadParams::default()
        };
        (TopologyParams::small().seed(11), wp)
    }

    #[test]
    fn prepend_visible_at_collectors_and_local_pref_demoted() {
        let (tp, wp) = params();
        let report = run(&tp, &wp).expect("steering path found");
        assert!(
            report.prepend_succeeded(),
            "prepended paths at collectors: {}/{}",
            report.prepended_observations,
            report.total_observations
        );
        assert!(
            report.local_pref_succeeded(),
            "local-pref {} -> {}",
            report.local_pref_before,
            report.local_pref_after
        );
        assert_eq!(report.local_pref_after, 70);
    }

    #[test]
    fn intermediate_is_customer_of_target() {
        let (tp, wp) = params();
        let report = run(&tp, &wp).expect("steering path found");
        // Rebuild the same topology to check the relationship.
        let topo = tp.build();
        assert_eq!(
            topo.role_of(report.target, report.intermediate),
            Some(bgpworms_topology::Role::Customer)
        );
    }
}
