//! The §6 lab study: vendor default behaviour, community capacity, RTBH
//! preference, and the validation-ordering misconfiguration — each run as
//! a small controlled topology and reported as a finding.

use bgpworms_routesim::{
    BlackholeService, OriginValidation, Origination, RetainRoutes, RouterConfig, SimSpec, Vendor,
};
use bgpworms_topology::{EdgeKind, Tier, Topology};
use bgpworms_types::{Asn, Community, Prefix};
use std::fmt;

/// One lab finding.
#[derive(Debug, Clone)]
pub struct LabFinding {
    /// Short identifier.
    pub name: &'static str,
    /// What the experiment shows.
    pub description: &'static str,
    /// Whether the behaviour was observed.
    pub observed: bool,
}

impl fmt::Display for LabFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {}",
            if self.observed { "x" } else { " " },
            self.name,
            self.description
        )
    }
}

/// The lab chain: origin AS1 → middle AS2 (device under test) → AS3.
fn chain() -> Topology {
    let mut topo = Topology::new();
    topo.add_simple(Asn::new(1), Tier::Stub);
    topo.add_simple(Asn::new(2), Tier::Transit);
    topo.add_simple(Asn::new(3), Tier::Transit);
    topo.add_edge(Asn::new(2), Asn::new(1), EdgeKind::ProviderToCustomer);
    topo.add_edge(Asn::new(3), Asn::new(2), EdgeKind::ProviderToCustomer);
    topo
}

fn p() -> Prefix {
    "10.60.0.0/16".parse().expect("valid")
}

fn community_visible_at_as3(middle: RouterConfig) -> bool {
    let topo = chain();
    let sim = SimSpec::new(&topo)
        .retain(RetainRoutes::All)
        .configure(middle)
        .compile();
    let tag = Community::new(1, 77);
    let res = sim.run(&[Origination::announce(Asn::new(1), p(), vec![tag])]);
    res.route_at(Asn::new(3), &p())
        .map(|r| r.has_community(tag))
        .unwrap_or(false)
}

/// §6.1 — Juniper propagates communities by default.
pub fn juniper_propagates_by_default() -> LabFinding {
    let mut cfg = RouterConfig::defaults(Asn::new(2));
    cfg.vendor = Vendor::Juniper;
    cfg.send_community_configured = false;
    LabFinding {
        name: "juniper-default-propagation",
        description: "JunOS forwards received communities without explicit configuration",
        observed: community_visible_at_as3(cfg),
    }
}

/// §6.1 — Cisco requires explicit per-peer send-community.
pub fn cisco_requires_send_community() -> LabFinding {
    let mut cfg = RouterConfig::defaults(Asn::new(2));
    cfg.vendor = Vendor::Cisco;
    cfg.send_community_configured = false;
    let silent = !community_visible_at_as3(cfg);
    let mut cfg = RouterConfig::defaults(Asn::new(2));
    cfg.vendor = Vendor::Cisco;
    cfg.send_community_configured = true;
    let speaks = community_visible_at_as3(cfg);
    LabFinding {
        name: "cisco-send-community-required",
        description: "IOS sends no communities until send-community is configured per peer",
        observed: silent && speaks,
    }
}

/// §6.1 — Cisco caps added communities at 32; received ones ride along.
pub fn cisco_add_limit() -> LabFinding {
    let topo = chain();
    let mut middle = RouterConfig::defaults(Asn::new(2));
    middle.vendor = Vendor::Cisco;
    middle.send_community_configured = true;
    middle.tagging.egress_tags = (0..48).map(|i| Community::new(2, 5000 + i)).collect();
    let sim = SimSpec::new(&topo)
        .retain(RetainRoutes::All)
        .configure(middle)
        .compile();
    // The origin attaches 4 of its own; AS2 tries to add 48 more.
    let origin_tags: Vec<Community> = (0..4).map(|i| Community::new(1, i)).collect();
    let res = sim.run(&[Origination::announce(Asn::new(1), p(), origin_tags)]);
    let n = res
        .route_at(Asn::new(3), &p())
        .map(|r| r.communities.len())
        .unwrap_or(0);
    LabFinding {
        name: "cisco-32-add-limit",
        description: "IOS permits adding at most 32 communities on top of received ones",
        observed: n == 4 + 32,
    }
}

/// §6.2 — an accepted blackhole route wins best-path selection even against
/// a shorter path (local-pref raised per the RTBH white paper).
pub fn rtbh_preference_beats_shorter_path() -> LabFinding {
    // AS3 hears p from AS1 directly (short) and a blackhole-tagged copy via
    // AS2 (long).
    let mut topo = Topology::new();
    topo.add_simple(Asn::new(1), Tier::Stub);
    topo.add_simple(Asn::new(2), Tier::Transit);
    topo.add_simple(Asn::new(3), Tier::Transit);
    topo.add_edge(Asn::new(3), Asn::new(1), EdgeKind::ProviderToCustomer);
    topo.add_edge(Asn::new(2), Asn::new(1), EdgeKind::ProviderToCustomer);
    topo.add_edge(Asn::new(3), Asn::new(2), EdgeKind::ProviderToCustomer);
    let mut target = RouterConfig::defaults(Asn::new(3));
    target.services.blackhole = Some(BlackholeService::default());
    let mut attacker = RouterConfig::defaults(Asn::new(2));
    attacker.tagging.egress_tags = vec![Community::new(3, 666)];
    let sim = SimSpec::new(&topo)
        .retain(RetainRoutes::All)
        .configure(target)
        .configure(attacker)
        .compile();
    let victim: Prefix = "10.61.0.0/24".parse().expect("valid");
    let res = sim.run(&[Origination::announce(Asn::new(1), victim, vec![])]);
    let observed = res
        .route_at(Asn::new(3), &victim)
        .map(|r| r.blackholed && r.path.hop_count() == 2)
        .unwrap_or(false);
    LabFinding {
        name: "rtbh-preference",
        description: "blackhole-tagged routes override shortest-path selection",
        observed,
    }
}

/// §6.3 — the NANOG-tutorial route-map validates customer prefixes *after*
/// matching the blackhole community, so a blackhole-tagged hijack passes.
pub fn misordered_validation_enables_hijack() -> LabFinding {
    let run = |misordered: bool| -> bool {
        let mut topo = Topology::new();
        topo.add_simple(Asn::new(1), Tier::Stub);
        topo.add_simple(Asn::new(2), Tier::Transit);
        topo.add_simple(Asn::new(3), Tier::Transit);
        topo.add_edge(Asn::new(3), Asn::new(1), EdgeKind::ProviderToCustomer);
        topo.add_edge(Asn::new(3), Asn::new(2), EdgeKind::ProviderToCustomer);
        let victim: Prefix = "10.62.0.0/24".parse().expect("valid");
        let mut target = RouterConfig::defaults(Asn::new(3));
        target.services.blackhole = Some(BlackholeService::default());
        target.validation = OriginValidation::Irr {
            validate_after_blackhole: misordered,
        };
        let sim = SimSpec::new(&topo)
            .retain(RetainRoutes::All)
            .configure(target)
            .register_irr(victim, Asn::new(1))
            .register_rpki(victim, Asn::new(1))
            .compile();
        let res = sim.run(&[
            Origination::announce(Asn::new(1), victim, vec![]),
            Origination::announce(Asn::new(2), victim, vec![Community::new(3, 666)]).at(10),
        ]);
        res.route_at(Asn::new(3), &victim)
            .map(|r| r.blackholed)
            .unwrap_or(false)
    };
    LabFinding {
        name: "misordered-validation",
        description: "blackhole-before-validate route-maps accept blackhole-tagged hijacks",
        observed: run(true) && !run(false),
    }
}

/// Runs the full lab matrix.
pub fn run_all() -> Vec<LabFinding> {
    vec![
        juniper_propagates_by_default(),
        cisco_requires_send_community(),
        cisco_add_limit(),
        rtbh_preference_beats_shorter_path(),
        misordered_validation_enables_hijack(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lab_findings_reproduce() {
        for finding in run_all() {
            assert!(finding.observed, "lab finding not observed: {finding}");
        }
    }

    #[test]
    fn findings_have_distinct_names() {
        let findings = run_all();
        let mut names: Vec<_> = findings.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), findings.len());
    }

    #[test]
    fn display_marks_observed() {
        let f = LabFinding {
            name: "x",
            description: "y",
            observed: true,
        };
        assert!(f.to_string().starts_with("[x]"));
    }
}
