//! Seeded golden-fixture regression tests for the six §7 wild experiments.
//!
//! Each test runs one experiment on a fixed `TopologyParams::small()` world
//! and asserts the exact summary numbers it produced when the fixture was
//! recorded. The experiments are deterministic end to end (seeded topology,
//! seeded workload, deterministic engine), so any drift here means an engine
//! or harness change shifted the reproduction numbers — which must be a
//! conscious decision (re-record the fixture in the same PR), never an
//! accident of a refactor.
//!
//! The values were recorded before the `Campaign` streaming-sink migration
//! and re-verified after it, so they also pin that migration as
//! semantics-preserving.

use bgpworms_attacks::wild::{
    extended_survey, full_table, propagation_check, routeserver_experiment, rtbh_experiment,
    steering_experiment, survey,
};
use bgpworms_routesim::{Workload, WorkloadParams};
use bgpworms_topology::{
    addressing::AddressingParams, FullTableParams, PrefixAllocation, TopologyParams,
};
use bgpworms_types::Asn;

/// The §7.6 survey fixture parameters (small world, capped corpus).
fn survey_params() -> survey::SurveyParams {
    survey::SurveyParams {
        topo: TopologyParams::small().seed(2018),
        workload: WorkloadParams {
            blackhole_service_prob: 0.8,
            ..WorkloadParams::default()
        },
        n_vps: 24,
        max_communities: 40,
        verify_repeatability: true,
    }
}

/// The extended-survey fixture parameters (steering + location tagging on).
fn extended_params() -> survey::SurveyParams {
    survey::SurveyParams {
        topo: TopologyParams::small().seed(8),
        workload: WorkloadParams {
            blackhole_service_prob: 0.8,
            steering_service_prob: 0.7,
            location_tag_prob: 0.6,
            ..WorkloadParams::default()
        },
        n_vps: 24,
        max_communities: 120,
        verify_repeatability: false,
    }
}

#[test]
fn golden_survey() {
    let report = survey::run(&survey_params());
    let summary = (
        report.communities_tested,
        report.effective.len(),
        report.affected_vps.len(),
        report.total_vps,
        report.repeatable,
    );
    println!("GOLDEN survey: {summary:?}");
    assert_eq!(summary, GOLDEN_SURVEY, "survey fixture drifted");
    let hops: Vec<(usize, usize)> = report
        .hop_distribution
        .iter()
        .map(|(&h, &n)| (h, n))
        .collect();
    assert_eq!(
        hops.as_slice(),
        GOLDEN_SURVEY_HOPS,
        "survey hop distribution drifted"
    );
}

const GOLDEN_SURVEY: (usize, usize, usize, usize, Option<bool>) = (20, 2, 10, 24, Some(true));
const GOLDEN_SURVEY_HOPS: &[(usize, usize)] = &[(0, 10), (1, 8)];

#[test]
fn golden_likely_survey() {
    let report = extended_survey::likely_survey(&extended_params());
    let summary = (
        report.verified.tested,
        report.verified.effective,
        report.verified.affected_vps.len(),
        report.likely.tested,
        report.likely.effective,
        report.likely.affected_vps.len(),
    );
    println!("GOLDEN likely: {summary:?}");
    assert_eq!(summary, GOLDEN_LIKELY, "likely-survey fixture drifted");
}

const GOLDEN_LIKELY: (usize, usize, usize, usize, usize, usize) = (19, 5, 14, 23, 0, 0);

#[test]
fn golden_steering_survey() {
    let report = extended_survey::steering_survey(&extended_params());
    let summary = (
        report.tested,
        report.effective.len(),
        report.effective.values().copied().sum::<usize>(),
        report.reachability_lost,
        report.total_vps,
    );
    println!("GOLDEN steering-survey: {summary:?}");
    assert_eq!(
        summary, GOLDEN_STEERING_SURVEY,
        "steering-survey fixture drifted"
    );
}

// At small() scale no prepend community moves a vantage point's path: the
// PEERING-like injector's many direct peer sessions give most ASes shorter
// routes that bypass the steering targets entirely (the tiny-world module
// test pins the nonzero-effect case). The zero row still locks the corpus
// size and — via `reachability_lost == 0` over every candidate run — the
// correctness of the per-candidate FIBs and traces.
const GOLDEN_STEERING_SURVEY: (usize, usize, usize, usize, usize) = (45, 0, 0, 0, 24);

#[test]
fn golden_location_injection() {
    let report =
        extended_survey::location_injection(&extended_params()).expect("two location taggers");
    let summary = (
        report.injected.len(),
        report.collectors_observing,
        report.collectors_with_contradiction,
        report.total_collectors,
    );
    println!("GOLDEN location: {summary:?}");
    assert_eq!(
        summary, GOLDEN_LOCATION,
        "location-injection fixture drifted"
    );
}

const GOLDEN_LOCATION: (usize, usize, usize, usize) = (2, 8, 6, 11);

#[test]
fn golden_propagation_check() {
    let report = propagation_check::run(
        &TopologyParams::small().seed(42),
        &WorkloadParams::default(),
    );
    let summary = (
        report.research.forwarders.len(),
        report.research.ases_on_paths.len(),
        report.peering.forwarders.len(),
        report.peering.ases_on_paths.len(),
    );
    println!("GOLDEN propagation: {summary:?}");
    assert_eq!(
        summary, GOLDEN_PROPAGATION,
        "propagation-check fixture drifted"
    );
}

const GOLDEN_PROPAGATION: (usize, usize, usize, usize) = (4, 23, 6, 22);

#[test]
fn golden_routeserver_experiment() {
    let report = routeserver_experiment::run(
        &TopologyParams::small().seed(17),
        &WorkloadParams::default(),
    )
    .expect("route server found");
    let summary = (
        report.route_server,
        report.attackee,
        report.route_present_before,
        report.route_absent_after,
    );
    println!("GOLDEN routeserver: {summary:?}");
    assert_eq!(summary, GOLDEN_ROUTESERVER, "route-server fixture drifted");
}

const GOLDEN_ROUTESERVER: (Asn, Asn, bool, bool) = (Asn::new(125), Asn::new(6), true, true);

#[test]
fn golden_rtbh_experiment() {
    let wp = WorkloadParams {
        blackhole_service_prob: 0.9,
        ..WorkloadParams::default()
    };
    let report = rtbh_experiment::run(&TopologyParams::small().seed(11), &wp, false, 40)
        .expect("target found");
    let summary = (
        report.target,
        report.target_distance,
        report.target_blackholed,
        report.responsive_before,
        report.responsive_after,
        report.lost_vps.len(),
        report.total_vps,
    );
    println!("GOLDEN rtbh: {summary:?}");
    assert_eq!(summary, GOLDEN_RTBH, "RTBH fixture drifted");
}

const GOLDEN_RTBH: (Asn, usize, bool, usize, usize, usize, usize) =
    (Asn::new(2), 2, true, 40, 14, 26, 40);

#[test]
fn golden_steering_experiment() {
    let wp = WorkloadParams {
        steering_service_prob: 0.9,
        ..WorkloadParams::default()
    };
    let report = steering_experiment::run(&TopologyParams::small().seed(11), &wp)
        .expect("steering path found");
    let summary = (
        report.target,
        report.intermediate,
        report.prepended_observations,
        report.total_observations,
        report.local_pref_before,
        report.local_pref_after,
    );
    println!("GOLDEN steering: {summary:?}");
    assert_eq!(summary, GOLDEN_STEERING, "steering fixture drifted");
}

const GOLDEN_STEERING: (Asn, Asn, usize, usize, u32, u32) =
    (Asn::new(2), Asn::new(6), 15, 29, 120, 70);

#[test]
fn golden_full_table_sampled() {
    // A sampled full-table campaign over the deaggregated small() world:
    // pins the schedule size, the flood-equivalence class structure, and
    // the table-scale propagation/stripping counts — so both the
    // deaggregation generator and the memoized campaign path are locked.
    let topo = TopologyParams::small().seed(2018).build();
    let alloc = PrefixAllocation::assign(&topo, AddressingParams::default())
        .deaggregate(&topo, FullTableParams::default());
    let workload = Workload::generate(&topo, &alloc, &WorkloadParams::default());
    let report = full_table::run_full_table(&workload, &topo, &alloc, Some(alloc.len() / 2), 1);
    let summary = (
        report.prefixes,
        report.classes,
        report.class_sims,
        report.class_hits,
        report.converged,
        report.tags.observations,
        report.tags.tagged_observations,
    );
    println!("GOLDEN full-table: {summary:?}");
    assert_eq!(summary, GOLDEN_FULL_TABLE, "full-table fixture drifted");
}

const GOLDEN_FULL_TABLE: (usize, usize, u64, u64, bool, usize, usize) =
    (187, 67, 67, 120, true, 5461, 4012);
