//! BGP message framing (RFC 4271 §4): header marker, length, type, and the
//! per-type body codecs.

use crate::attribute::{decode_attributes, encode_attributes};
use crate::cursor::Cursor;
use crate::error::WireError;
use crate::nlri;
use crate::open::OpenMessage;
use crate::CodecConfig;
use bgpworms_types::{Ipv6Prefix, Prefix, RouteUpdate};

/// Length of the all-ones marker.
pub const MARKER_LEN: usize = 16;
/// Minimum BGP message length (bare header).
pub const MIN_MESSAGE_LEN: usize = 19;
/// Maximum BGP message length.
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Message type codes.
pub mod msg_type {
    /// OPEN.
    pub const OPEN: u8 = 1;
    /// UPDATE.
    pub const UPDATE: u8 = 2;
    /// NOTIFICATION.
    pub const NOTIFICATION: u8 = 3;
    /// KEEPALIVE.
    pub const KEEPALIVE: u8 = 4;
}

/// A NOTIFICATION message: error code, subcode, diagnostic data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Major error code (RFC 4271 §4.5).
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic payload.
    pub data: Vec<u8>,
}

/// A decoded BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpMessage {
    /// OPEN.
    Open(OpenMessage),
    /// UPDATE — the workhorse; carries withdrawals, attributes and NLRI.
    Update(RouteUpdate),
    /// NOTIFICATION.
    Notification(Notification),
    /// KEEPALIVE.
    Keepalive,
}

fn push_header(out: &mut Vec<u8>, msg_type: u8) -> usize {
    out.extend_from_slice(&[0xFF; MARKER_LEN]);
    let len_pos = out.len();
    out.extend_from_slice(&[0, 0]);
    out.push(msg_type);
    len_pos
}

fn finish_header(out: &mut [u8], len_pos: usize) -> Result<(), WireError> {
    let total = out.len();
    if total > MAX_MESSAGE_LEN {
        return Err(WireError::TooLong(total));
    }
    out[len_pos..len_pos + 2].copy_from_slice(&(total as u16).to_be_bytes());
    Ok(())
}

/// Encodes an UPDATE message. IPv4 prefixes travel in the update body,
/// IPv6 prefixes via MP_REACH/MP_UNREACH attributes (RFC 4760).
pub fn encode_update(update: &RouteUpdate, cfg: CodecConfig) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(64);
    let len_pos = push_header(&mut out, msg_type::UPDATE);

    let (v4_withdrawn, v6_withdrawn): (Vec<_>, Vec<_>) =
        update.withdrawn.iter().partition(|p| p.is_v4());
    let (v4_announced, v6_announced): (Vec<_>, Vec<_>) =
        update.announced.iter().partition(|p| p.is_v4());
    let v6_announced: Vec<Ipv6Prefix> = v6_announced
        .iter()
        .map(|p| match p {
            Prefix::V6(p) => *p,
            Prefix::V4(_) => unreachable!("partitioned"),
        })
        .collect();
    let v6_withdrawn: Vec<Ipv6Prefix> = v6_withdrawn
        .iter()
        .map(|p| match p {
            Prefix::V6(p) => *p,
            Prefix::V4(_) => unreachable!("partitioned"),
        })
        .collect();

    // Withdrawn routes (IPv4).
    let mut wd = Vec::new();
    for p in &v4_withdrawn {
        if let Prefix::V4(p4) = p {
            nlri::encode_v4(*p4, &mut wd);
        }
    }
    out.extend_from_slice(&(wd.len() as u16).to_be_bytes());
    out.extend_from_slice(&wd);

    // Path attributes. Withdraw-only updates carry none.
    let attrs = if v4_announced.is_empty() && v6_announced.is_empty() && v6_withdrawn.is_empty() {
        Vec::new()
    } else {
        encode_attributes(&update.attrs, &v6_announced, &v6_withdrawn, cfg)?
    };
    out.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
    out.extend_from_slice(&attrs);

    // IPv4 NLRI.
    for p in &v4_announced {
        if let Prefix::V4(p4) = p {
            nlri::encode_v4(*p4, &mut out);
        }
    }

    finish_header(&mut out, len_pos)?;
    Ok(out)
}

/// Encodes a KEEPALIVE.
pub fn encode_keepalive() -> Vec<u8> {
    let mut out = Vec::with_capacity(MIN_MESSAGE_LEN);
    let len_pos = push_header(&mut out, msg_type::KEEPALIVE);
    finish_header(&mut out, len_pos).expect("keepalive fits");
    out
}

/// Encodes a NOTIFICATION.
pub fn encode_notification(n: &Notification) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(MIN_MESSAGE_LEN + 2 + n.data.len());
    let len_pos = push_header(&mut out, msg_type::NOTIFICATION);
    out.push(n.code);
    out.push(n.subcode);
    out.extend_from_slice(&n.data);
    finish_header(&mut out, len_pos)?;
    Ok(out)
}

/// Decodes one message from the front of `data`.
///
/// Returns the message and the number of bytes consumed, so a caller can
/// iterate over a concatenated stream (as found inside MRT files and on TCP
/// sessions).
pub fn decode_message(data: &[u8], cfg: CodecConfig) -> Result<(BgpMessage, usize), WireError> {
    let mut c = Cursor::new(data);
    let marker = c.take("message marker", MARKER_LEN)?;
    if marker.iter().any(|&b| b != 0xFF) {
        return Err(WireError::BadMarker);
    }
    let length = c.u16("message length")?;
    let ltotal = length as usize;
    if !(MIN_MESSAGE_LEN..=MAX_MESSAGE_LEN).contains(&ltotal) {
        return Err(WireError::BadMessageLength(length));
    }
    let msg_type = c.u8("message type")?;
    let body = c.take("message body", ltotal - MIN_MESSAGE_LEN)?;

    let msg = match msg_type {
        msg_type::OPEN => BgpMessage::Open(OpenMessage::decode(body)?),
        msg_type::UPDATE => BgpMessage::Update(decode_update_body(body, cfg)?),
        msg_type::NOTIFICATION => {
            let mut bc = Cursor::new(body);
            let code = bc.u8("notification code")?;
            let subcode = bc.u8("notification subcode")?;
            BgpMessage::Notification(Notification {
                code,
                subcode,
                data: bc.take_rest().to_vec(),
            })
        }
        msg_type::KEEPALIVE => {
            if !body.is_empty() {
                return Err(WireError::BadMessageLength(length));
            }
            BgpMessage::Keepalive
        }
        t => return Err(WireError::UnknownMessageType(t)),
    };

    Ok((msg, ltotal))
}

fn decode_update_body(body: &[u8], cfg: CodecConfig) -> Result<RouteUpdate, WireError> {
    let mut c = Cursor::new(body);

    let wd_len = c.u16("withdrawn routes length")? as usize;
    let wd_bytes = c.take("withdrawn routes", wd_len)?;
    let mut wd_cursor = Cursor::new(wd_bytes);
    let mut withdrawn = nlri::decode_v4_run(&mut wd_cursor)?;

    let attr_len = c.u16("total path attribute length")? as usize;
    let attr_bytes = c.take("path attributes", attr_len)?;
    let decoded = decode_attributes(attr_bytes, cfg)?;

    let mut nlri_cursor = Cursor::new(c.take_rest());
    let mut announced = nlri::decode_v4_run(&mut nlri_cursor)?;

    announced.extend(decoded.mp_announced);
    withdrawn.extend(decoded.mp_withdrawn);

    let mut attrs = decoded.attrs;
    if attrs.next_hop.is_none() {
        attrs.next_hop = decoded.mp_next_hop;
    }

    Ok(RouteUpdate {
        withdrawn,
        attrs,
        announced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_types::{AsPath, Asn, Community, PathAttributes};

    fn sample_update() -> RouteUpdate {
        let mut attrs = PathAttributes {
            as_path: AsPath::from_asns([Asn::new(3), Asn::new(2), Asn::new(1)]),
            next_hop: Some("10.0.0.1".parse().unwrap()),
            ..PathAttributes::default()
        };
        attrs.add_community(Community::new(3, 666));
        RouteUpdate::announce("192.0.2.0/24".parse().unwrap(), attrs)
    }

    #[test]
    fn update_roundtrip() {
        let u = sample_update();
        let bytes = encode_update(&u, CodecConfig::modern()).unwrap();
        let (msg, used) = decode_message(&bytes, CodecConfig::modern()).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(msg, BgpMessage::Update(u));
    }

    #[test]
    fn update_with_mixed_families_roundtrips() {
        let mut u = sample_update();
        u.announced.push("2001:db8::/32".parse().unwrap());
        u.withdrawn.push("10.9.0.0/16".parse().unwrap());
        u.withdrawn.push("2001:db8:dead::/48".parse().unwrap());
        let bytes = encode_update(&u, CodecConfig::modern()).unwrap();
        let (msg, _) = decode_message(&bytes, CodecConfig::modern()).unwrap();
        match msg {
            BgpMessage::Update(dec) => {
                assert_eq!(dec.announced, u.announced);
                // v4 withdrawals decode before MP ones; order is preserved here
                assert_eq!(dec.withdrawn, u.withdrawn);
                assert_eq!(dec.attrs.communities, u.attrs.communities);
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn withdraw_only_update_has_no_attributes() {
        let u = RouteUpdate::withdraw(vec!["10.0.0.0/8".parse().unwrap()]);
        let bytes = encode_update(&u, CodecConfig::modern()).unwrap();
        let (msg, _) = decode_message(&bytes, CodecConfig::modern()).unwrap();
        match msg {
            BgpMessage::Update(dec) => {
                assert_eq!(dec.withdrawn, u.withdrawn);
                assert!(dec.announced.is_empty());
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn keepalive_roundtrip() {
        let bytes = encode_keepalive();
        assert_eq!(bytes.len(), MIN_MESSAGE_LEN);
        let (msg, used) = decode_message(&bytes, CodecConfig::modern()).unwrap();
        assert_eq!(msg, BgpMessage::Keepalive);
        assert_eq!(used, MIN_MESSAGE_LEN);
    }

    #[test]
    fn notification_roundtrip() {
        let n = Notification {
            code: 6,
            subcode: 2,
            data: vec![1, 2, 3],
        };
        let bytes = encode_notification(&n).unwrap();
        let (msg, _) = decode_message(&bytes, CodecConfig::modern()).unwrap();
        assert_eq!(msg, BgpMessage::Notification(n));
    }

    #[test]
    fn bad_marker_rejected() {
        let mut bytes = encode_keepalive();
        bytes[3] = 0x00;
        assert_eq!(
            decode_message(&bytes, CodecConfig::modern()).unwrap_err(),
            WireError::BadMarker
        );
    }

    #[test]
    fn bad_length_rejected() {
        let mut bytes = encode_keepalive();
        bytes[16] = 0;
        bytes[17] = 5; // < 19
        assert_eq!(
            decode_message(&bytes, CodecConfig::modern()).unwrap_err(),
            WireError::BadMessageLength(5)
        );
        let mut bytes = encode_keepalive();
        bytes[16] = 0xFF;
        bytes[17] = 0xFF; // > 4096
        assert!(matches!(
            decode_message(&bytes, CodecConfig::modern()),
            Err(WireError::BadMessageLength(_))
        ));
    }

    #[test]
    fn keepalive_with_body_rejected() {
        let mut bytes = encode_keepalive();
        bytes.push(0xAB);
        bytes[17] = 20;
        assert!(matches!(
            decode_message(&bytes, CodecConfig::modern()),
            Err(WireError::BadMessageLength(20))
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = encode_keepalive();
        bytes[18] = 9;
        assert_eq!(
            decode_message(&bytes, CodecConfig::modern()).unwrap_err(),
            WireError::UnknownMessageType(9)
        );
    }

    #[test]
    fn truncated_stream_reports_truncation() {
        let u = sample_update();
        let bytes = encode_update(&u, CodecConfig::modern()).unwrap();
        for cut in [0, 5, 18, bytes.len() - 1] {
            assert!(
                matches!(
                    decode_message(&bytes[..cut], CodecConfig::modern()),
                    Err(WireError::Truncated { .. })
                ),
                "cut at {cut} must report truncation"
            );
        }
    }

    #[test]
    fn stream_of_messages_decodes_sequentially() {
        let u = sample_update();
        let mut stream = encode_update(&u, CodecConfig::modern()).unwrap();
        stream.extend_from_slice(&encode_keepalive());
        let (m1, used1) = decode_message(&stream, CodecConfig::modern()).unwrap();
        let (m2, used2) = decode_message(&stream[used1..], CodecConfig::modern()).unwrap();
        assert!(matches!(m1, BgpMessage::Update(_)));
        assert_eq!(m2, BgpMessage::Keepalive);
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn oversized_update_rejected_at_encode() {
        let mut u = sample_update();
        // ~1400 prefixes * ~5 bytes > 4096
        u.announced = (0..1400u32)
            .map(|i| Prefix::V4(bgpworms_types::Ipv4Prefix::new(i << 12, 24).unwrap()))
            .collect();
        assert!(matches!(
            encode_update(&u, CodecConfig::modern()),
            Err(WireError::TooLong(_))
        ));
    }
}
