//! Structured decode/encode errors for the BGP wire codec.

use std::fmt;

/// Errors raised while encoding or decoding BGP wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a field could be read.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The 16-byte all-ones marker was malformed.
    BadMarker,
    /// The header length field is outside [19, 4096] or disagrees with the
    /// message type's minimum.
    BadMessageLength(u16),
    /// Unknown message type code.
    UnknownMessageType(u8),
    /// An attribute's flags are invalid for its type (e.g. well-known
    /// attribute marked optional).
    BadAttributeFlags {
        /// Attribute type code.
        type_code: u8,
        /// Offending flag byte.
        flags: u8,
    },
    /// An attribute's declared length is wrong for its type.
    BadAttributeLength {
        /// Attribute type code.
        type_code: u8,
        /// Declared length.
        len: usize,
    },
    /// A prefix length in NLRI exceeds the maximum for its address family.
    BadPrefixLength(u8),
    /// An AS_PATH segment has an unknown segment type.
    BadSegmentType(u8),
    /// Invalid ORIGIN attribute value.
    BadOrigin(u8),
    /// MP_REACH/MP_UNREACH with an AFI/SAFI pair we do not support.
    UnsupportedAfiSafi {
        /// Address Family Identifier.
        afi: u16,
        /// Subsequent AFI.
        safi: u8,
    },
    /// A message would exceed the 4096-byte maximum when encoded.
    TooLong(usize),
    /// A value cannot be represented in the negotiated encoding
    /// (e.g. a 32-bit ASN on a 2-octet session is replaced by AS_TRANS;
    /// this error is for cases with no such fallback).
    Unrepresentable(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated input reading {what}: need {needed} bytes, have {available}"
            ),
            WireError::BadMarker => write!(f, "malformed 16-byte message marker"),
            WireError::BadMessageLength(l) => write!(f, "invalid message length {l}"),
            WireError::UnknownMessageType(t) => write!(f, "unknown BGP message type {t}"),
            WireError::BadAttributeFlags { type_code, flags } => write!(
                f,
                "invalid flags 0x{flags:02x} for attribute type {type_code}"
            ),
            WireError::BadAttributeLength { type_code, len } => {
                write!(f, "invalid length {len} for attribute type {type_code}")
            }
            WireError::BadPrefixLength(l) => write!(f, "invalid NLRI prefix length /{l}"),
            WireError::BadSegmentType(t) => write!(f, "unknown AS_PATH segment type {t}"),
            WireError::BadOrigin(v) => write!(f, "invalid ORIGIN value {v}"),
            WireError::UnsupportedAfiSafi { afi, safi } => {
                write!(f, "unsupported AFI/SAFI {afi}/{safi}")
            }
            WireError::TooLong(l) => write!(f, "encoded message would be {l} bytes (max 4096)"),
            WireError::Unrepresentable(what) => {
                write!(f, "value not representable on this session: {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated {
            what: "attribute header",
            needed: 3,
            available: 1,
        };
        assert!(e.to_string().contains("attribute header"));
        assert!(WireError::BadMarker.to_string().contains("marker"));
        assert!(WireError::UnsupportedAfiSafi { afi: 3, safi: 9 }
            .to_string()
            .contains("3/9"));
    }
}
