//! RFC 4271 BGP message wire codec.
//!
//! (`ARCHITECTURE.md` at the repository root shows where the wire layer
//! sits in the workspace.)
//!
//! Encodes and decodes the four BGP message types (OPEN, UPDATE,
//! NOTIFICATION, KEEPALIVE) to and from their on-the-wire representation,
//! including:
//!
//! * path attributes with full flag handling (optional/transitive/partial/
//!   extended length), preserving unknown transitive attributes opaquely;
//! * both 2-octet and 4-octet AS_PATH encodings (RFC 6793), selected by
//!   [`CodecConfig::asn4`];
//! * RFC 1997 COMMUNITIES, RFC 8092 LARGE_COMMUNITY and RFC 4360 extended
//!   communities;
//! * RFC 4760 MP_REACH_NLRI / MP_UNREACH_NLRI for IPv6 unicast.
//!
//! The decoder is defensive: every length is validated before use and all
//! failures are reported as structured [`WireError`]s — the fuzz-ish
//! property tests feed it arbitrary byte soup.
//!
//! # Example
//!
//! ```
//! use bgpworms_types::{Asn, AsPath, PathAttributes, Prefix, RouteUpdate};
//! use bgpworms_wire::{decode_message, encode_update, BgpMessage, CodecConfig};
//!
//! let mut attrs = PathAttributes::default();
//! attrs.as_path = AsPath::from_asns([Asn::new(2), Asn::new(1)]);
//! attrs.next_hop = Some("10.0.0.1".parse().unwrap());
//! let update = RouteUpdate::announce("192.0.2.0/24".parse().unwrap(), attrs);
//!
//! let cfg = CodecConfig::default();
//! let bytes = encode_update(&update, cfg).unwrap();
//! let (msg, used) = decode_message(&bytes, cfg).unwrap();
//! assert_eq!(used, bytes.len());
//! match msg {
//!     BgpMessage::Update(u) => assert_eq!(u.announced, vec!["192.0.2.0/24".parse::<Prefix>().unwrap()]),
//!     _ => panic!("expected UPDATE"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod cursor;
pub mod error;
pub mod message;
pub mod nlri;
pub mod open;

pub use attribute::{decode_attributes, encode_attributes};
pub use error::WireError;
pub use message::{
    decode_message, encode_keepalive, encode_notification, encode_update, BgpMessage, Notification,
    MARKER_LEN, MAX_MESSAGE_LEN, MIN_MESSAGE_LEN,
};
pub use open::{Capability, OpenMessage};

/// Session-level codec parameters that change the wire representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Encode/decode AS numbers in AS_PATH and AGGREGATOR as 4-octet values
    /// (RFC 6793 capability negotiated). Modern sessions — and the MRT
    /// `MESSAGE_AS4` subtype — use 4-octet; legacy sessions use 2-octet with
    /// AS_TRANS substitution.
    pub asn4: bool,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig { asn4: true }
    }
}

impl CodecConfig {
    /// Config for a legacy 2-octet-AS session.
    pub const fn legacy() -> Self {
        CodecConfig { asn4: false }
    }

    /// Config for a 4-octet-AS session (the default).
    pub const fn modern() -> Self {
        CodecConfig { asn4: true }
    }
}
