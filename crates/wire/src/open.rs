//! OPEN message and capability advertisement (RFC 4271 §4.2, RFC 5492).

use crate::cursor::Cursor;
use crate::error::WireError;
use bgpworms_types::Asn;
use std::net::Ipv4Addr;

/// Capability codes we interpret.
pub mod cap_code {
    /// Multiprotocol extensions (RFC 4760).
    pub const MULTIPROTOCOL: u8 = 1;
    /// Route refresh (RFC 2918).
    pub const ROUTE_REFRESH: u8 = 2;
    /// 4-octet AS numbers (RFC 6793).
    pub const FOUR_OCTET_AS: u8 = 65;
}

/// A capability advertised in an OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// Multiprotocol AFI/SAFI support.
    Multiprotocol {
        /// Address family identifier.
        afi: u16,
        /// Subsequent address family identifier.
        safi: u8,
    },
    /// Route-refresh support.
    RouteRefresh,
    /// 4-octet AS number support, carrying the speaker's real ASN.
    FourOctetAs(Asn),
    /// Anything else, preserved opaquely.
    Unknown {
        /// Capability code.
        code: u8,
        /// Raw capability value.
        data: Vec<u8>,
    },
}

/// A BGP OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMessage {
    /// Protocol version; always 4.
    pub version: u8,
    /// The 2-octet "My Autonomous System" field (AS_TRANS when the real
    /// ASN needs 4 octets).
    pub my_as: u16,
    /// Proposed hold time in seconds.
    pub hold_time: u16,
    /// BGP identifier (router ID).
    pub bgp_id: Ipv4Addr,
    /// Advertised capabilities.
    pub capabilities: Vec<Capability>,
}

impl OpenMessage {
    /// Builds a modern OPEN for `asn` with 4-octet-AS and IPv4+IPv6
    /// multiprotocol capabilities.
    pub fn modern(asn: Asn, hold_time: u16, bgp_id: Ipv4Addr) -> Self {
        OpenMessage {
            version: 4,
            my_as: asn.as_u16().unwrap_or(23_456),
            hold_time,
            bgp_id,
            capabilities: vec![
                Capability::Multiprotocol { afi: 1, safi: 1 },
                Capability::Multiprotocol { afi: 2, safi: 1 },
                Capability::RouteRefresh,
                Capability::FourOctetAs(asn),
            ],
        }
    }

    /// The speaker's effective ASN: the 4-octet capability value when
    /// present, otherwise the 2-octet field.
    pub fn asn(&self) -> Asn {
        for cap in &self.capabilities {
            if let Capability::FourOctetAs(a) = cap {
                return *a;
            }
        }
        Asn::new(u32::from(self.my_as))
    }

    /// True if the 4-octet-AS capability is advertised.
    pub fn supports_asn4(&self) -> bool {
        self.capabilities
            .iter()
            .any(|c| matches!(c, Capability::FourOctetAs(_)))
    }

    /// Encodes the OPEN body (without the 19-byte message header).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut caps = Vec::new();
        for cap in &self.capabilities {
            match cap {
                Capability::Multiprotocol { afi, safi } => {
                    caps.push(cap_code::MULTIPROTOCOL);
                    caps.push(4);
                    caps.extend_from_slice(&afi.to_be_bytes());
                    caps.push(0);
                    caps.push(*safi);
                }
                Capability::RouteRefresh => {
                    caps.push(cap_code::ROUTE_REFRESH);
                    caps.push(0);
                }
                Capability::FourOctetAs(asn) => {
                    caps.push(cap_code::FOUR_OCTET_AS);
                    caps.push(4);
                    caps.extend_from_slice(&asn.get().to_be_bytes());
                }
                Capability::Unknown { code, data } => {
                    caps.push(*code);
                    caps.push(data.len() as u8);
                    caps.extend_from_slice(data);
                }
            }
        }

        let mut out = Vec::with_capacity(10 + caps.len());
        out.push(self.version);
        out.extend_from_slice(&self.my_as.to_be_bytes());
        out.extend_from_slice(&self.hold_time.to_be_bytes());
        out.extend_from_slice(&self.bgp_id.octets());
        if caps.is_empty() {
            out.push(0);
        } else {
            // One optional parameter of type 2 (capabilities).
            out.push((caps.len() + 2) as u8);
            out.push(2);
            out.push(caps.len() as u8);
            out.extend_from_slice(&caps);
        }
        out
    }

    /// Decodes an OPEN body.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(body);
        let version = c.u8("open version")?;
        let my_as = c.u16("open my_as")?;
        let hold_time = c.u16("open hold time")?;
        let bgp_id = Ipv4Addr::from(c.u32("open bgp id")?);
        let opt_len = c.u8("open optional parameters length")? as usize;
        let params = c.take("open optional parameters", opt_len)?;

        let mut capabilities = Vec::new();
        let mut pc = Cursor::new(params);
        while !pc.is_empty() {
            let ptype = pc.u8("optional parameter type")?;
            let plen = pc.u8("optional parameter length")? as usize;
            let pbody = pc.take("optional parameter body", plen)?;
            if ptype != 2 {
                continue; // non-capability parameters ignored
            }
            let mut cc = Cursor::new(pbody);
            while !cc.is_empty() {
                let code = cc.u8("capability code")?;
                let clen = cc.u8("capability length")? as usize;
                let cbody = cc.take("capability body", clen)?;
                let cap = match (code, clen) {
                    (cap_code::MULTIPROTOCOL, 4) => Capability::Multiprotocol {
                        afi: u16::from_be_bytes([cbody[0], cbody[1]]),
                        safi: cbody[3],
                    },
                    (cap_code::ROUTE_REFRESH, 0) => Capability::RouteRefresh,
                    (cap_code::FOUR_OCTET_AS, 4) => {
                        Capability::FourOctetAs(Asn::new(u32::from_be_bytes([
                            cbody[0], cbody[1], cbody[2], cbody[3],
                        ])))
                    }
                    _ => Capability::Unknown {
                        code,
                        data: cbody.to_vec(),
                    },
                };
                capabilities.push(cap);
            }
        }

        Ok(OpenMessage {
            version,
            my_as,
            hold_time,
            bgp_id,
            capabilities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modern_open_roundtrip() {
        let open = OpenMessage::modern(Asn::new(2914), 180, "192.0.2.1".parse().unwrap());
        let body = open.encode_body();
        let dec = OpenMessage::decode(&body).unwrap();
        assert_eq!(dec, open);
        assert_eq!(dec.asn(), Asn::new(2914));
        assert!(dec.supports_asn4());
    }

    #[test]
    fn four_octet_asn_uses_as_trans() {
        let open = OpenMessage::modern(Asn::new(4_200_000_001), 90, "10.0.0.1".parse().unwrap());
        assert_eq!(open.my_as, 23_456);
        let dec = OpenMessage::decode(&open.encode_body()).unwrap();
        assert_eq!(dec.asn(), Asn::new(4_200_000_001));
    }

    #[test]
    fn open_without_capabilities() {
        let open = OpenMessage {
            version: 4,
            my_as: 65001,
            hold_time: 0,
            bgp_id: "1.1.1.1".parse().unwrap(),
            capabilities: vec![],
        };
        let body = open.encode_body();
        let dec = OpenMessage::decode(&body).unwrap();
        assert_eq!(dec, open);
        assert!(!dec.supports_asn4());
        assert_eq!(dec.asn(), Asn::new(65001));
    }

    #[test]
    fn unknown_capability_preserved() {
        let open = OpenMessage {
            version: 4,
            my_as: 1,
            hold_time: 180,
            bgp_id: "1.1.1.1".parse().unwrap(),
            capabilities: vec![Capability::Unknown {
                code: 199,
                data: vec![9, 9],
            }],
        };
        let dec = OpenMessage::decode(&open.encode_body()).unwrap();
        assert_eq!(dec.capabilities, open.capabilities);
    }

    #[test]
    fn truncated_open_rejected() {
        let open = OpenMessage::modern(Asn::new(1), 180, "1.1.1.1".parse().unwrap());
        let body = open.encode_body();
        assert!(matches!(
            OpenMessage::decode(&body[..body.len() - 2]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            OpenMessage::decode(&[4, 0]),
            Err(WireError::Truncated { .. })
        ));
    }
}
