//! A bounds-checked byte reader producing descriptive [`WireError`]s.
//!
//! `bytes::Buf` panics on under-read; BGP decoding must instead fail
//! gracefully on truncated or hostile input, so this thin cursor wraps a
//! slice and converts every read into a checked operation.

use crate::error::WireError;

/// A forward-only reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a slice.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn check(&self, what: &'static str, needed: usize) -> Result<(), WireError> {
        if self.remaining() < needed {
            Err(WireError::Truncated {
                what,
                needed,
                available: self.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        self.check(what, 1)?;
        let b = self.data[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        self.check(what, 2)?;
        let v = u16::from_be_bytes([self.data[self.pos], self.data[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        self.check(what, 4)?;
        let v = u32::from_be_bytes([
            self.data[self.pos],
            self.data[self.pos + 1],
            self.data[self.pos + 2],
            self.data[self.pos + 3],
        ]);
        self.pos += 4;
        Ok(v)
    }

    /// Reads a big-endian u128 (16 bytes, for IPv6 addresses).
    pub fn u128(&mut self, what: &'static str) -> Result<u128, WireError> {
        self.check(what, 16)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(&self.data[self.pos..self.pos + 16]);
        self.pos += 16;
        Ok(u128::from_be_bytes(b))
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], WireError> {
        self.check(what, n)?;
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes everything left.
    pub fn take_rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        let mut c = Cursor::new(&data);
        assert_eq!(c.u8("a").unwrap(), 1);
        assert_eq!(c.u16("b").unwrap(), 0x0203);
        assert_eq!(c.u32("c").unwrap(), 0x0405_0607);
        assert!(c.is_empty());
    }

    #[test]
    fn truncation_reports_context() {
        let data = [0x01];
        let mut c = Cursor::new(&data);
        let err = c.u32("needs four").unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                what: "needs four",
                needed: 4,
                available: 1
            }
        );
        // cursor not advanced on failure
        assert_eq!(c.remaining(), 1);
        assert_eq!(c.u8("one").unwrap(), 1);
    }

    #[test]
    fn take_and_rest() {
        let data = [1, 2, 3, 4, 5];
        let mut c = Cursor::new(&data);
        assert_eq!(c.take("head", 2).unwrap(), &[1, 2]);
        assert_eq!(c.position(), 2);
        assert_eq!(c.take_rest(), &[3, 4, 5]);
        assert!(c.is_empty());
        assert_eq!(c.take_rest(), &[] as &[u8]);
    }

    #[test]
    fn u128_read() {
        let mut data = [0u8; 16];
        data[15] = 9;
        let mut c = Cursor::new(&data);
        assert_eq!(c.u128("v6").unwrap(), 9);
        assert!(Cursor::new(&data[..15]).u128("v6").is_err());
    }
}
