//! NLRI (prefix) wire encoding: a length byte followed by the minimum number
//! of address bytes (RFC 4271 §4.3).

use crate::cursor::Cursor;
use crate::error::WireError;
use bgpworms_types::{Ipv4Prefix, Ipv6Prefix, Prefix};

/// Encodes one IPv4 prefix into `out`.
pub fn encode_v4(p: Ipv4Prefix, out: &mut Vec<u8>) {
    out.push(p.len());
    let nbytes = usize::from(p.len().div_ceil(8));
    out.extend_from_slice(&p.network().to_be_bytes()[..nbytes]);
}

/// Encodes one IPv6 prefix into `out`.
pub fn encode_v6(p: Ipv6Prefix, out: &mut Vec<u8>) {
    out.push(p.len());
    let nbytes = usize::from(p.len().div_ceil(8));
    out.extend_from_slice(&p.network().to_be_bytes()[..nbytes]);
}

/// Decodes one IPv4 prefix.
pub fn decode_v4(c: &mut Cursor<'_>) -> Result<Ipv4Prefix, WireError> {
    let len = c.u8("nlri length")?;
    if len > 32 {
        return Err(WireError::BadPrefixLength(len));
    }
    let nbytes = usize::from(len.div_ceil(8));
    let raw = c.take("nlri v4 address", nbytes)?;
    let mut addr = [0u8; 4];
    addr[..nbytes].copy_from_slice(raw);
    // Constructor masks any stray host bits an implementation left set.
    Ipv4Prefix::new(u32::from_be_bytes(addr), len).map_err(|_| WireError::BadPrefixLength(len))
}

/// Decodes one IPv6 prefix.
pub fn decode_v6(c: &mut Cursor<'_>) -> Result<Ipv6Prefix, WireError> {
    let len = c.u8("nlri length")?;
    if len > 128 {
        return Err(WireError::BadPrefixLength(len));
    }
    let nbytes = usize::from(len.div_ceil(8));
    let raw = c.take("nlri v6 address", nbytes)?;
    let mut addr = [0u8; 16];
    addr[..nbytes].copy_from_slice(raw);
    Ipv6Prefix::new(u128::from_be_bytes(addr), len).map_err(|_| WireError::BadPrefixLength(len))
}

/// Decodes a run of IPv4 prefixes until the cursor is exhausted.
pub fn decode_v4_run(c: &mut Cursor<'_>) -> Result<Vec<Prefix>, WireError> {
    let mut out = Vec::new();
    while !c.is_empty() {
        out.push(Prefix::V4(decode_v4(c)?));
    }
    Ok(out)
}

/// Decodes a run of IPv6 prefixes until the cursor is exhausted.
pub fn decode_v6_run(c: &mut Cursor<'_>) -> Result<Vec<Prefix>, WireError> {
    let mut out = Vec::new();
    while !c.is_empty() {
        out.push(Prefix::V6(decode_v6(c)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn v4_minimal_bytes() {
        let mut out = Vec::new();
        encode_v4(p4("10.0.0.0/8"), &mut out);
        assert_eq!(out, vec![8, 10]);
        out.clear();
        encode_v4(p4("192.0.2.0/24"), &mut out);
        assert_eq!(out, vec![24, 192, 0, 2]);
        out.clear();
        encode_v4(p4("0.0.0.0/0"), &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        encode_v4(p4("203.0.113.77/32"), &mut out);
        assert_eq!(out, vec![32, 203, 0, 113, 77]);
    }

    #[test]
    fn v4_roundtrip() {
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "172.16.0.0/12",
            "192.0.2.0/25",
            "1.2.3.4/32",
        ] {
            let mut out = Vec::new();
            encode_v4(p4(s), &mut out);
            let mut c = Cursor::new(&out);
            assert_eq!(decode_v4(&mut c).unwrap(), p4(s));
            assert!(c.is_empty());
        }
    }

    #[test]
    fn v6_roundtrip() {
        for s in ["::/0", "2001:db8::/32", "2001:db8:1:2::/64", "::1/128"] {
            let p: Ipv6Prefix = s.parse().unwrap();
            let mut out = Vec::new();
            encode_v6(p, &mut out);
            let mut c = Cursor::new(&out);
            assert_eq!(decode_v6(&mut c).unwrap(), p);
        }
    }

    #[test]
    fn bad_length_rejected() {
        let mut c = Cursor::new(&[33, 1, 2, 3, 4, 5]);
        assert_eq!(
            decode_v4(&mut c).unwrap_err(),
            WireError::BadPrefixLength(33)
        );
        let mut c = Cursor::new(&[129]);
        assert_eq!(
            decode_v6(&mut c).unwrap_err(),
            WireError::BadPrefixLength(129)
        );
    }

    #[test]
    fn truncated_address_rejected() {
        let mut c = Cursor::new(&[24, 192, 0]); // /24 needs 3 bytes, has 2
        assert!(matches!(
            decode_v4(&mut c),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn stray_host_bits_masked() {
        // /8 with a second byte would be over-long; instead: /4 with low bits
        let mut c = Cursor::new(&[4, 0xFF]);
        let p = decode_v4(&mut c).unwrap();
        assert_eq!(p, p4("240.0.0.0/4"));
    }

    #[test]
    fn run_decoding() {
        let mut out = Vec::new();
        encode_v4(p4("10.0.0.0/8"), &mut out);
        encode_v4(p4("192.0.2.0/24"), &mut out);
        let mut c = Cursor::new(&out);
        let run = decode_v4_run(&mut c).unwrap();
        assert_eq!(
            run,
            vec![Prefix::V4(p4("10.0.0.0/8")), Prefix::V4(p4("192.0.2.0/24"))]
        );
    }
}
