//! Path-attribute encode/decode (RFC 4271 §4.3, plus RFC 1997/4360/8092
//! community attributes and RFC 4760 multiprotocol NLRI).

use crate::cursor::Cursor;
use crate::error::WireError;
use crate::nlri;
use crate::CodecConfig;
use bgpworms_types::{
    aspath::{AsPath, PathSegment},
    attr::{Aggregator, Origin, PathAttributes, UnknownAttribute},
    Asn, Community, ExtendedCommunity, Ipv6Prefix, LargeCommunity, Prefix,
};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Attribute flag: optional (not well-known).
pub const FLAG_OPTIONAL: u8 = 0x80;
/// Attribute flag: transitive.
pub const FLAG_TRANSITIVE: u8 = 0x40;
/// Attribute flag: partial (set when a transitive optional attribute crossed
/// a router that did not understand it).
pub const FLAG_PARTIAL: u8 = 0x20;
/// Attribute flag: two-byte length field follows.
pub const FLAG_EXT_LEN: u8 = 0x10;

/// Attribute type codes we interpret.
pub mod type_code {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR.
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITIES (RFC 1997).
    pub const COMMUNITIES: u8 = 8;
    /// MP_REACH_NLRI (RFC 4760).
    pub const MP_REACH_NLRI: u8 = 14;
    /// MP_UNREACH_NLRI (RFC 4760).
    pub const MP_UNREACH_NLRI: u8 = 15;
    /// EXTENDED COMMUNITIES (RFC 4360).
    pub const EXT_COMMUNITIES: u8 = 16;
    /// LARGE_COMMUNITY (RFC 8092).
    pub const LARGE_COMMUNITIES: u8 = 32;
}

/// AFI values (RFC 4760).
pub const AFI_IPV4: u16 = 1;
/// IPv6 address family.
pub const AFI_IPV6: u16 = 2;
/// Unicast SAFI.
pub const SAFI_UNICAST: u8 = 1;

/// Everything recovered from the attributes section of one UPDATE,
/// with multiprotocol NLRI separated back out of the attribute blob.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedAttributes {
    /// The logical path attributes.
    pub attrs: PathAttributes,
    /// Prefixes announced via MP_REACH_NLRI (IPv6 unicast).
    pub mp_announced: Vec<Prefix>,
    /// Prefixes withdrawn via MP_UNREACH_NLRI.
    pub mp_withdrawn: Vec<Prefix>,
    /// Next hop carried inside MP_REACH_NLRI.
    pub mp_next_hop: Option<IpAddr>,
}

fn push_attr_header(out: &mut Vec<u8>, mut flags: u8, type_code: u8, len: usize) {
    if len > 255 {
        flags |= FLAG_EXT_LEN;
    }
    out.push(flags);
    out.push(type_code);
    if len > 255 {
        out.extend_from_slice(&(len as u16).to_be_bytes());
    } else {
        out.push(len as u8);
    }
}

fn encode_as_path(path: &AsPath, cfg: CodecConfig) -> Vec<u8> {
    let mut body = Vec::new();
    for seg in path.segments() {
        let (seg_type, asns) = match seg {
            PathSegment::Set(v) => (1u8, v),
            PathSegment::Sequence(v) => (2u8, v),
        };
        if asns.is_empty() {
            continue;
        }
        // Segments hold at most 255 ASNs; long prepends are split.
        for chunk in asns.chunks(255) {
            body.push(seg_type);
            body.push(chunk.len() as u8);
            for a in chunk {
                if cfg.asn4 {
                    body.extend_from_slice(&a.get().to_be_bytes());
                } else {
                    let v = a.as_u16().unwrap_or(23_456); // AS_TRANS
                    body.extend_from_slice(&v.to_be_bytes());
                }
            }
        }
    }
    body
}

fn decode_as_path(data: &[u8], cfg: CodecConfig) -> Result<AsPath, WireError> {
    let mut c = Cursor::new(data);
    let mut segments = Vec::new();
    while !c.is_empty() {
        let seg_type = c.u8("as_path segment type")?;
        let count = c.u8("as_path segment count")? as usize;
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            let asn = if cfg.asn4 {
                c.u32("as_path asn")?
            } else {
                u32::from(c.u16("as_path asn")?)
            };
            asns.push(Asn::new(asn));
        }
        let seg = match seg_type {
            1 => PathSegment::Set(asns),
            2 => PathSegment::Sequence(asns),
            t => return Err(WireError::BadSegmentType(t)),
        };
        segments.push(seg);
    }
    Ok(AsPath::from_segments(segments))
}

/// Encodes the attributes section (without the leading 2-byte total length).
///
/// `v6_announced` / `v6_withdrawn` are emitted as MP_REACH / MP_UNREACH;
/// IPv4 NLRI lives in the UPDATE body and is not passed here.
pub fn encode_attributes(
    attrs: &PathAttributes,
    v6_announced: &[Ipv6Prefix],
    v6_withdrawn: &[Ipv6Prefix],
    cfg: CodecConfig,
) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();

    // ORIGIN — well-known mandatory.
    push_attr_header(&mut out, FLAG_TRANSITIVE, type_code::ORIGIN, 1);
    out.push(attrs.origin.code());

    // AS_PATH — well-known mandatory.
    let path = encode_as_path(&attrs.as_path, cfg);
    push_attr_header(&mut out, FLAG_TRANSITIVE, type_code::AS_PATH, path.len());
    out.extend_from_slice(&path);

    // NEXT_HOP — mandatory when IPv4 NLRI is present; we emit whenever set.
    if let Some(IpAddr::V4(nh)) = attrs.next_hop {
        push_attr_header(&mut out, FLAG_TRANSITIVE, type_code::NEXT_HOP, 4);
        out.extend_from_slice(&nh.octets());
    }

    if let Some(med) = attrs.med {
        push_attr_header(&mut out, FLAG_OPTIONAL, type_code::MED, 4);
        out.extend_from_slice(&med.to_be_bytes());
    }

    if let Some(lp) = attrs.local_pref {
        push_attr_header(&mut out, FLAG_TRANSITIVE, type_code::LOCAL_PREF, 4);
        out.extend_from_slice(&lp.to_be_bytes());
    }

    if attrs.atomic_aggregate {
        push_attr_header(&mut out, FLAG_TRANSITIVE, type_code::ATOMIC_AGGREGATE, 0);
    }

    if let Some(agg) = attrs.aggregator {
        let len = if cfg.asn4 { 8 } else { 6 };
        push_attr_header(
            &mut out,
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            type_code::AGGREGATOR,
            len,
        );
        if cfg.asn4 {
            out.extend_from_slice(&agg.asn.get().to_be_bytes());
        } else {
            out.extend_from_slice(&agg.asn.as_u16().unwrap_or(23_456).to_be_bytes());
        }
        out.extend_from_slice(&agg.router_id.octets());
    }

    if !attrs.communities.is_empty() {
        push_attr_header(
            &mut out,
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            type_code::COMMUNITIES,
            attrs.communities.len() * 4,
        );
        for c in &attrs.communities {
            out.extend_from_slice(&c.as_u32().to_be_bytes());
        }
    }

    if !attrs.ext_communities.is_empty() {
        push_attr_header(
            &mut out,
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            type_code::EXT_COMMUNITIES,
            attrs.ext_communities.len() * 8,
        );
        for c in &attrs.ext_communities {
            out.extend_from_slice(&c.to_bytes());
        }
    }

    if !attrs.large_communities.is_empty() {
        push_attr_header(
            &mut out,
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            type_code::LARGE_COMMUNITIES,
            attrs.large_communities.len() * 12,
        );
        for c in &attrs.large_communities {
            out.extend_from_slice(&c.to_bytes());
        }
    }

    if !v6_announced.is_empty() {
        let mut body = Vec::new();
        body.extend_from_slice(&AFI_IPV6.to_be_bytes());
        body.push(SAFI_UNICAST);
        let nh = match attrs.next_hop {
            Some(IpAddr::V6(nh)) => nh,
            _ => Ipv6Addr::UNSPECIFIED,
        };
        body.push(16);
        body.extend_from_slice(&nh.octets());
        body.push(0); // reserved
        for p in v6_announced {
            nlri::encode_v6(*p, &mut body);
        }
        push_attr_header(
            &mut out,
            FLAG_OPTIONAL,
            type_code::MP_REACH_NLRI,
            body.len(),
        );
        out.extend_from_slice(&body);
    }

    if !v6_withdrawn.is_empty() {
        let mut body = Vec::new();
        body.extend_from_slice(&AFI_IPV6.to_be_bytes());
        body.push(SAFI_UNICAST);
        for p in v6_withdrawn {
            nlri::encode_v6(*p, &mut body);
        }
        push_attr_header(
            &mut out,
            FLAG_OPTIONAL,
            type_code::MP_UNREACH_NLRI,
            body.len(),
        );
        out.extend_from_slice(&body);
    }

    // Unknown attributes are re-emitted verbatim (transitive forwarding).
    for u in &attrs.unknown {
        push_attr_header(&mut out, u.flags & !FLAG_EXT_LEN, u.type_code, u.data.len());
        out.extend_from_slice(&u.data);
    }

    Ok(out)
}

fn expect_len(type_code: u8, data: &[u8], expected: usize) -> Result<(), WireError> {
    if data.len() != expected {
        Err(WireError::BadAttributeLength {
            type_code,
            len: data.len(),
        })
    } else {
        Ok(())
    }
}

/// Decodes the attributes section of an UPDATE (after the 2-byte total
/// attribute length has been consumed; `data` is exactly that section).
pub fn decode_attributes(data: &[u8], cfg: CodecConfig) -> Result<DecodedAttributes, WireError> {
    let mut c = Cursor::new(data);
    let mut out = DecodedAttributes::default();

    while !c.is_empty() {
        let flags = c.u8("attribute flags")?;
        let type_code_v = c.u8("attribute type")?;
        let len = if flags & FLAG_EXT_LEN != 0 {
            c.u16("attribute extended length")? as usize
        } else {
            c.u8("attribute length")? as usize
        };
        let body = c.take("attribute body", len)?;

        match type_code_v {
            type_code::ORIGIN => {
                expect_len(type_code_v, body, 1)?;
                out.attrs.origin =
                    Origin::from_code(body[0]).ok_or(WireError::BadOrigin(body[0]))?;
            }
            type_code::AS_PATH => {
                out.attrs.as_path = decode_as_path(body, cfg)?;
            }
            type_code::NEXT_HOP => {
                expect_len(type_code_v, body, 4)?;
                out.attrs.next_hop = Some(IpAddr::V4(Ipv4Addr::new(
                    body[0], body[1], body[2], body[3],
                )));
            }
            type_code::MED => {
                expect_len(type_code_v, body, 4)?;
                out.attrs.med = Some(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
            }
            type_code::LOCAL_PREF => {
                expect_len(type_code_v, body, 4)?;
                out.attrs.local_pref =
                    Some(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
            }
            type_code::ATOMIC_AGGREGATE => {
                expect_len(type_code_v, body, 0)?;
                out.attrs.atomic_aggregate = true;
            }
            type_code::AGGREGATOR => {
                let expected = if cfg.asn4 { 8 } else { 6 };
                expect_len(type_code_v, body, expected)?;
                let mut bc = Cursor::new(body);
                let asn = if cfg.asn4 {
                    bc.u32("aggregator asn")?
                } else {
                    u32::from(bc.u16("aggregator asn")?)
                };
                let rid = bc.u32("aggregator router id")?;
                out.attrs.aggregator = Some(Aggregator {
                    asn: Asn::new(asn),
                    router_id: Ipv4Addr::from(rid),
                });
            }
            type_code::COMMUNITIES => {
                if len % 4 != 0 {
                    return Err(WireError::BadAttributeLength {
                        type_code: type_code_v,
                        len,
                    });
                }
                let mut bc = Cursor::new(body);
                while !bc.is_empty() {
                    out.attrs
                        .communities
                        .push(Community::from_u32(bc.u32("community")?));
                }
            }
            type_code::EXT_COMMUNITIES => {
                if len % 8 != 0 {
                    return Err(WireError::BadAttributeLength {
                        type_code: type_code_v,
                        len,
                    });
                }
                let mut bc = Cursor::new(body);
                while !bc.is_empty() {
                    let raw = bc.take("ext community", 8)?;
                    let mut b = [0u8; 8];
                    b.copy_from_slice(raw);
                    out.attrs
                        .ext_communities
                        .push(ExtendedCommunity::from_bytes(b));
                }
            }
            type_code::LARGE_COMMUNITIES => {
                if len % 12 != 0 {
                    return Err(WireError::BadAttributeLength {
                        type_code: type_code_v,
                        len,
                    });
                }
                let mut bc = Cursor::new(body);
                while !bc.is_empty() {
                    let raw = bc.take("large community", 12)?;
                    let mut b = [0u8; 12];
                    b.copy_from_slice(raw);
                    out.attrs
                        .large_communities
                        .push(LargeCommunity::from_bytes(b));
                }
            }
            type_code::MP_REACH_NLRI => {
                let mut bc = Cursor::new(body);
                let afi = bc.u16("mp_reach afi")?;
                let safi = bc.u8("mp_reach safi")?;
                if afi != AFI_IPV6 || safi != SAFI_UNICAST {
                    return Err(WireError::UnsupportedAfiSafi { afi, safi });
                }
                let nh_len = bc.u8("mp_reach next hop length")? as usize;
                let nh = bc.take("mp_reach next hop", nh_len)?;
                if nh_len >= 16 {
                    let mut b = [0u8; 16];
                    b.copy_from_slice(&nh[..16]);
                    out.mp_next_hop = Some(IpAddr::V6(Ipv6Addr::from(b)));
                }
                let _reserved = bc.u8("mp_reach reserved")?;
                out.mp_announced = nlri::decode_v6_run(&mut bc)?;
            }
            type_code::MP_UNREACH_NLRI => {
                let mut bc = Cursor::new(body);
                let afi = bc.u16("mp_unreach afi")?;
                let safi = bc.u8("mp_unreach safi")?;
                if afi != AFI_IPV6 || safi != SAFI_UNICAST {
                    return Err(WireError::UnsupportedAfiSafi { afi, safi });
                }
                out.mp_withdrawn = nlri::decode_v6_run(&mut bc)?;
            }
            _ => {
                out.attrs.unknown.push(UnknownAttribute {
                    flags,
                    type_code: type_code_v,
                    data: body.to_vec(),
                });
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_types::attr::PathAttributes;

    fn roundtrip(attrs: &PathAttributes, cfg: CodecConfig) -> DecodedAttributes {
        let bytes = encode_attributes(attrs, &[], &[], cfg).unwrap();
        decode_attributes(&bytes, cfg).unwrap()
    }

    fn base_attrs() -> PathAttributes {
        let mut a = PathAttributes {
            origin: Origin::Igp,
            as_path: AsPath::from_asns([Asn::new(3), Asn::new(2), Asn::new(1)]),
            next_hop: Some("10.0.0.1".parse().unwrap()),
            ..PathAttributes::default()
        };
        a.add_community(Community::new(2914, 421));
        a
    }

    #[test]
    fn basic_roundtrip_modern() {
        let attrs = base_attrs();
        let dec = roundtrip(&attrs, CodecConfig::modern());
        assert_eq!(dec.attrs, attrs);
    }

    #[test]
    fn basic_roundtrip_legacy() {
        let attrs = base_attrs();
        let dec = roundtrip(&attrs, CodecConfig::legacy());
        assert_eq!(dec.attrs, attrs);
    }

    #[test]
    fn legacy_substitutes_as_trans() {
        let mut attrs = base_attrs();
        attrs.as_path = AsPath::from_asns([Asn::new(4_200_000_001), Asn::new(1)]);
        let dec = roundtrip(&attrs, CodecConfig::legacy());
        assert_eq!(
            dec.attrs.as_path.to_vec(),
            vec![Asn::TRANS, Asn::new(1)],
            "32-bit ASN becomes AS_TRANS on 2-octet session"
        );
    }

    #[test]
    fn all_optional_attrs_roundtrip() {
        let mut attrs = base_attrs();
        attrs.med = Some(50);
        attrs.local_pref = Some(200);
        attrs.atomic_aggregate = true;
        attrs.aggregator = Some(Aggregator {
            asn: Asn::new(2914),
            router_id: "192.0.2.1".parse().unwrap(),
        });
        attrs
            .ext_communities
            .push(ExtendedCommunity::route_target(1, 2));
        attrs
            .large_communities
            .push(LargeCommunity::new(4_200_000_001, 666, 0));
        let dec = roundtrip(&attrs, CodecConfig::modern());
        assert_eq!(dec.attrs, attrs);
    }

    #[test]
    fn unknown_transitive_attr_preserved() {
        let mut attrs = base_attrs();
        attrs.unknown.push(UnknownAttribute {
            flags: FLAG_OPTIONAL | FLAG_TRANSITIVE,
            type_code: 99,
            data: vec![1, 2, 3, 4, 5],
        });
        let dec = roundtrip(&attrs, CodecConfig::modern());
        assert_eq!(dec.attrs.unknown, attrs.unknown);
    }

    #[test]
    fn long_prepend_splits_segments() {
        let mut attrs = base_attrs();
        let mut path = AsPath::from_asns([Asn::new(1)]);
        path.prepend(Asn::new(7), 300); // > 255, must split
        attrs.as_path = path.clone();
        let dec = roundtrip(&attrs, CodecConfig::modern());
        assert_eq!(dec.attrs.as_path.to_vec(), path.to_vec());
        assert_eq!(dec.attrs.as_path.hop_count(), 301);
    }

    #[test]
    fn many_communities_need_extended_length() {
        // 16K communities fit in one extended-length attribute (§6.1: a BGP
        // update can carry up to 2^16/4 = 16K communities).
        let mut attrs = base_attrs();
        attrs.communities = (0..1000).map(|i| Community::new(100, i as u16)).collect();
        let bytes = encode_attributes(&attrs, &[], &[], CodecConfig::modern()).unwrap();
        let dec = decode_attributes(&bytes, CodecConfig::modern()).unwrap();
        assert_eq!(dec.attrs.communities.len(), 1000);
        assert_eq!(dec.attrs.communities, attrs.communities);
    }

    #[test]
    fn v6_mp_reach_roundtrip() {
        let mut attrs = base_attrs();
        attrs.next_hop = Some("2001:db8::1".parse().unwrap());
        let v6: Ipv6Prefix = "2001:db8:100::/48".parse().unwrap();
        let bytes = encode_attributes(&attrs, &[v6], &[], CodecConfig::modern()).unwrap();
        let dec = decode_attributes(&bytes, CodecConfig::modern()).unwrap();
        assert_eq!(dec.mp_announced, vec![Prefix::V6(v6)]);
        assert_eq!(dec.mp_next_hop, Some("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn v6_mp_unreach_roundtrip() {
        let attrs = PathAttributes::default();
        let v6: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        let bytes = encode_attributes(&attrs, &[], &[v6], CodecConfig::modern()).unwrap();
        let dec = decode_attributes(&bytes, CodecConfig::modern()).unwrap();
        assert_eq!(dec.mp_withdrawn, vec![Prefix::V6(v6)]);
    }

    #[test]
    fn bad_origin_rejected() {
        let bytes = vec![FLAG_TRANSITIVE, type_code::ORIGIN, 1, 7];
        assert_eq!(
            decode_attributes(&bytes, CodecConfig::modern()).unwrap_err(),
            WireError::BadOrigin(7)
        );
    }

    #[test]
    fn bad_lengths_rejected() {
        // NEXT_HOP with 3 bytes
        let bytes = vec![FLAG_TRANSITIVE, type_code::NEXT_HOP, 3, 1, 2, 3];
        assert!(matches!(
            decode_attributes(&bytes, CodecConfig::modern()),
            Err(WireError::BadAttributeLength { .. })
        ));
        // COMMUNITIES not a multiple of 4
        let bytes = vec![
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            type_code::COMMUNITIES,
            5,
            0,
            0,
            0,
            0,
            0,
        ];
        assert!(matches!(
            decode_attributes(&bytes, CodecConfig::modern()),
            Err(WireError::BadAttributeLength { .. })
        ));
    }

    #[test]
    fn truncated_attribute_rejected() {
        let bytes = vec![FLAG_TRANSITIVE, type_code::AS_PATH, 10, 2, 1];
        assert!(matches!(
            decode_attributes(&bytes, CodecConfig::modern()),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_segment_type_rejected() {
        // AS_PATH with segment type 9
        let bytes = vec![FLAG_TRANSITIVE, type_code::AS_PATH, 6, 9, 1, 0, 0, 0, 1];
        assert_eq!(
            decode_attributes(&bytes, CodecConfig::modern()).unwrap_err(),
            WireError::BadSegmentType(9)
        );
    }

    #[test]
    fn unsupported_afi_safi_rejected() {
        let mut body = vec![0u8, 3, 1]; // AFI 3
        body.push(0);
        let mut bytes = vec![FLAG_OPTIONAL, type_code::MP_UNREACH_NLRI, body.len() as u8];
        bytes.extend_from_slice(&body);
        assert!(matches!(
            decode_attributes(&bytes, CodecConfig::modern()),
            Err(WireError::UnsupportedAfiSafi { afi: 3, .. })
        ));
    }

    #[test]
    fn as_set_roundtrip() {
        let mut attrs = base_attrs();
        attrs.as_path = AsPath::from_segments(vec![
            PathSegment::Sequence(vec![Asn::new(5), Asn::new(4)]),
            PathSegment::Set(vec![Asn::new(2), Asn::new(1)]),
        ]);
        let dec = roundtrip(&attrs, CodecConfig::modern());
        assert_eq!(dec.attrs.as_path, attrs.as_path);
    }
}
