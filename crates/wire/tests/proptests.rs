//! Property tests for the wire codec: arbitrary logical updates round-trip
//! bit-exactly, and arbitrary byte soup never panics the decoder.

use bgpworms_types::{
    attr::{Aggregator, Origin, PathAttributes},
    AsPath, Asn, Community, Ipv4Prefix, Ipv6Prefix, LargeCommunity, Prefix, RouteUpdate,
};
use bgpworms_wire::{decode_message, encode_update, BgpMessage, CodecConfig};
use proptest::prelude::*;

fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::V4(Ipv4Prefix::new(a, l).unwrap()))
}

fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(a, l)| Prefix::V6(Ipv6Prefix::new(a, l).unwrap()))
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        0u8..3,
        proptest::collection::vec(1u32..100_000, 1..8),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        any::<bool>(),
        proptest::option::of((1u32..100_000, any::<u32>())),
        proptest::collection::vec(any::<u32>(), 0..12),
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..4),
    )
        .prop_map(
            |(origin, path, nh, med, local_pref, atomic, agg, comms, large)| PathAttributes {
                origin: Origin::from_code(origin).unwrap(),
                as_path: AsPath::from_asns(path.into_iter().map(Asn::new)),
                next_hop: Some(std::net::IpAddr::V4(std::net::Ipv4Addr::from(nh))),
                med,
                local_pref,
                atomic_aggregate: atomic,
                aggregator: agg.map(|(asn, rid)| Aggregator {
                    asn: Asn::new(asn),
                    router_id: std::net::Ipv4Addr::from(rid),
                }),
                communities: comms.into_iter().map(Community::from_u32).collect(),
                large_communities: large
                    .into_iter()
                    .map(|(a, b, c)| LargeCommunity::new(a, b, c))
                    .collect(),
                ext_communities: vec![],
                unknown: vec![],
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_capped(256))]

    #[test]
    fn update_roundtrips_modern(
        attrs in arb_attrs(),
        announced in proptest::collection::vec(arb_v4_prefix(), 1..20),
        announced6 in proptest::collection::vec(arb_v6_prefix(), 0..10),
        withdrawn in proptest::collection::vec(arb_v4_prefix(), 0..10),
    ) {
        let mut u = RouteUpdate { withdrawn, attrs, announced };
        u.announced.extend(announced6);
        let cfg = CodecConfig::modern();
        let bytes = match encode_update(&u, cfg) {
            Ok(b) => b,
            Err(bgpworms_wire::WireError::TooLong(_)) => return Ok(()), // legal rejection
            Err(e) => return Err(TestCaseError::fail(format!("encode failed: {e}"))),
        };
        let (msg, used) = decode_message(&bytes, cfg).unwrap();
        prop_assert_eq!(used, bytes.len());
        match msg {
            BgpMessage::Update(dec) => {
                prop_assert_eq!(dec.announced, u.announced);
                prop_assert_eq!(dec.withdrawn, u.withdrawn);
                prop_assert_eq!(dec.attrs, u.attrs);
            }
            other => return Err(TestCaseError::fail(format!("expected update, got {other:?}"))),
        }
    }

    #[test]
    fn update_roundtrips_legacy_16bit_asns(
        path in proptest::collection::vec(1u32..65_000, 1..6),
        announced in proptest::collection::vec(arb_v4_prefix(), 1..5),
    ) {
        let attrs = PathAttributes {
            as_path: AsPath::from_asns(path.into_iter().map(Asn::new)),
            next_hop: Some("10.0.0.1".parse().unwrap()),
            ..PathAttributes::default()
        };
        let u = RouteUpdate { withdrawn: vec![], attrs, announced };
        let cfg = CodecConfig::legacy();
        let bytes = encode_update(&u, cfg).unwrap();
        let (msg, _) = decode_message(&bytes, cfg).unwrap();
        match msg {
            BgpMessage::Update(dec) => {
                prop_assert_eq!(dec.attrs.as_path, u.attrs.as_path);
                prop_assert_eq!(dec.announced, u.announced);
            }
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine; panics are not.
        let _ = decode_message(&data, CodecConfig::modern());
        let _ = decode_message(&data, CodecConfig::legacy());
    }

    #[test]
    fn decoder_never_panics_on_marker_prefixed_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        // Force it past the marker check so the body decoders get exercised.
        let mut msg = vec![0xFFu8; 16];
        let total = (19 + data.len()) as u16;
        msg.extend_from_slice(&total.to_be_bytes());
        msg.push(2); // UPDATE
        msg.extend_from_slice(&data);
        let _ = decode_message(&msg, CodecConfig::modern());
    }

    #[test]
    fn truncation_of_valid_message_is_graceful(
        attrs in arb_attrs(),
        announced in proptest::collection::vec(arb_v4_prefix(), 1..5),
        frac in 0.0f64..1.0,
    ) {
        let u = RouteUpdate { withdrawn: vec![], attrs, announced };
        let cfg = CodecConfig::modern();
        let bytes = encode_update(&u, cfg).unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_message(&bytes[..cut], cfg).is_err());
        }
    }
}
