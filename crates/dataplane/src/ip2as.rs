//! Naïve IP-to-AS mapping via longest-prefix match over origin
//! announcements — §7.6: "use a current routeview routing table to naïvely
//! map router interfaces to AS numbers". The paper itself notes the
//! technique is inaccurate; we reproduce the instrument, warts and all.

use bgpworms_topology::PrefixAllocation;
use bgpworms_types::{Asn, Ipv4Prefix};
use std::collections::{BTreeMap, BTreeSet};

/// Longest-match IP→origin-AS table.
#[derive(Debug, Clone, Default)]
pub struct IpToAsMap {
    entries: BTreeMap<(u32, u8), Asn>,
    lengths: BTreeSet<u8>,
}

impl IpToAsMap {
    /// Builds from explicit (prefix, origin) pairs — e.g. parsed from a
    /// collector RIB dump.
    pub fn from_entries<I: IntoIterator<Item = (Ipv4Prefix, Asn)>>(entries: I) -> Self {
        let mut map = IpToAsMap::default();
        for (p, a) in entries {
            map.insert(p, a);
        }
        map
    }

    /// Builds from the ground-truth allocation.
    pub fn from_alloc(alloc: &PrefixAllocation) -> Self {
        Self::from_entries(
            alloc
                .iter()
                .filter_map(|(asn, p)| p.as_v4().map(|p4| (p4, asn))),
        )
    }

    /// Adds one mapping.
    pub fn insert(&mut self, prefix: Ipv4Prefix, origin: Asn) {
        self.entries
            .insert((prefix.network(), prefix.len()), origin);
        self.lengths.insert(prefix.len());
    }

    /// Longest-match lookup.
    pub fn lookup(&self, ip: u32) -> Option<Asn> {
        for &len in self.lengths.iter().rev() {
            let p = Ipv4Prefix::new(ip, len).expect("len <= 32");
            if let Some(a) = self.entries.get(&(p.network(), len)) {
                return Some(*a);
            }
        }
        None
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    #[test]
    fn longest_match_selects_most_specific_origin() {
        let map = IpToAsMap::from_entries([
            (p4("10.0.0.0/8"), Asn::new(1)),
            (p4("10.5.0.0/16"), Asn::new(2)),
        ]);
        assert_eq!(map.lookup(ip("10.1.2.3")), Some(Asn::new(1)));
        assert_eq!(map.lookup(ip("10.5.2.3")), Some(Asn::new(2)));
        assert_eq!(map.lookup(ip("11.0.0.1")), None);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn from_alloc_covers_allocated_space() {
        let topo = bgpworms_topology::TopologyParams::tiny().seed(1).build();
        let alloc = PrefixAllocation::assign(
            &topo,
            bgpworms_topology::addressing::AddressingParams::default(),
        );
        let map = IpToAsMap::from_alloc(&alloc);
        assert!(!map.is_empty());
        for (asn, prefix) in alloc.iter() {
            if let Some(p4) = prefix.as_v4() {
                let host = PrefixAllocation::host_in(p4);
                assert_eq!(map.lookup(host), Some(asn), "host in {p4}");
            }
        }
    }
}
