//! Data-plane substrate: FIBs derived from the simulated control plane,
//! ping/traceroute, an Atlas-like probing platform, looking glasses, and
//! naïve IP-to-AS mapping.
//!
//! (`ARCHITECTURE.md` at the repository root shows where the data plane
//! sits in the workspace's layer stack.)
//!
//! The paper validates every attack on the data plane: RIPE Atlas probes
//! confirm RTBH drops (§7.3, §7.6), traceroutes bound how far blackhole
//! communities travelled, and looking glasses confirm steering. This crate
//! reproduces those instruments over `bgpworms-routesim` results:
//!
//! * [`Fib`] — per-AS longest-prefix-match forwarding tables, with null
//!   routes where a blackhole community was accepted;
//! * [`trace`]/[`ping`] — AS-level forward-path simulation including the
//!   reverse path for ping (both directions must deliver);
//! * [`AtlasPlatform`] — a deterministic set of vantage points running
//!   measurement campaigns;
//! * [`IpToAsMap`] — longest-match IP-to-origin mapping, as §7.6 builds
//!   from a RouteViews table;
//! * [`LookingGlass`] — formatted per-AS RIB queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atlas;
pub mod fib;
pub mod ip2as;
pub mod looking_glass;
pub mod probe;

pub use atlas::{AtlasPlatform, CampaignResult};
pub use fib::{Fib, FibAction};
pub use ip2as::IpToAsMap;
pub use looking_glass::LookingGlass;
pub use probe::{ping, trace, PingResult, TraceOutcome, TraceResult};
