//! Forwarding tables: per-AS longest-prefix match over the converged
//! control plane, with null routes for blackholed prefixes.

use bgpworms_routesim::{CampaignSink, PrefixOutcome, Route, RouteSource, SimResult};
use bgpworms_types::{Asn, Ipv4Prefix, Prefix};
use std::collections::{BTreeMap, BTreeSet};

/// What an AS does with traffic matching a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FibAction {
    /// Hand the packet to the next-hop AS.
    Forward(Asn),
    /// Deliver locally (this AS originates the covering prefix).
    Deliver,
    /// Null-route: a blackhole service accepted an RTBH announcement here
    /// (the "next-hop changed to a null interface" observation of §7.3).
    Null,
}

/// One AS's IPv4 forwarding table.
#[derive(Debug, Clone, Default)]
struct AsFib {
    /// (network, length) → action.
    entries: BTreeMap<(u32, u8), FibAction>,
    /// Lengths present, for longest-first probing.
    lengths: BTreeSet<u8>,
}

impl AsFib {
    fn insert(&mut self, prefix: Ipv4Prefix, action: FibAction) {
        self.entries
            .insert((prefix.network(), prefix.len()), action);
        self.lengths.insert(prefix.len());
    }

    fn lookup(&self, ip: u32) -> Option<(Ipv4Prefix, FibAction)> {
        for &len in self.lengths.iter().rev() {
            let p = Ipv4Prefix::new(ip, len).expect("len <= 32");
            if let Some(action) = self.entries.get(&(p.network(), len)) {
                return Some((p, *action));
            }
        }
        None
    }
}

/// All ASes' forwarding tables.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    tables: BTreeMap<Asn, AsFib>,
}

impl Fib {
    /// Builds FIBs from a simulation result (requires the run to have
    /// retained routes for the prefixes of interest).
    pub fn from_sim(result: &SimResult) -> Self {
        let mut fib = Fib::default();
        for (prefix, per_as) in &result.final_routes {
            for (asn, route) in per_as {
                fib.insert_route(*asn, prefix, route);
            }
        }
        fib
    }

    /// Inserts one entry (used by tests and synthetic scenarios).
    pub fn insert(&mut self, asn: Asn, prefix: Ipv4Prefix, action: FibAction) {
        self.tables.entry(asn).or_default().insert(prefix, action);
    }

    /// Inserts the forwarding action derived from one converged route.
    /// Non-IPv4 prefixes are ignored (data-plane probing is IPv4, like
    /// §7.6). This is the single-route form of [`Fib::from_sim`], used by
    /// the streaming [`CampaignSink`] impl below.
    pub fn insert_route(&mut self, asn: Asn, prefix: &Prefix, route: &Route) {
        if let Prefix::V4(p4) = prefix {
            self.tables
                .entry(asn)
                .or_default()
                .insert(*p4, action_of(route));
        }
    }

    /// Longest-prefix-match lookup at `asn`.
    pub fn lookup(&self, asn: Asn, ip: u32) -> Option<(Ipv4Prefix, FibAction)> {
        self.tables.get(&asn)?.lookup(ip)
    }

    /// Number of ASes with at least one entry.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no AS has any entry.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Merges another FIB into this one (entries from `other` overwrite on
    /// conflict). Used to combine a baseline FIB (vantage-point prefixes)
    /// with per-experiment FIBs covering only the test prefix.
    pub fn merge(&mut self, other: &Fib) {
        for (asn, table) in &other.tables {
            let dst = self.tables.entry(*asn).or_default();
            for (&(net, len), &action) in &table.entries {
                dst.insert(
                    Ipv4Prefix::new(net, len).expect("stored prefixes valid"),
                    action,
                );
            }
        }
    }

    /// Naïve reference lookup (linear scan) for differential testing.
    pub fn lookup_naive(&self, asn: Asn, ip: u32) -> Option<(Ipv4Prefix, FibAction)> {
        let table = self.tables.get(&asn)?;
        table
            .entries
            .iter()
            .filter_map(|(&(net, len), &action)| {
                let p = Ipv4Prefix::new(net, len).expect("valid");
                p.contains(ip).then_some((p, action))
            })
            .max_by_key(|(p, _)| p.len())
    }
}

/// Streaming aggregation: a [`bgpworms_routesim::Campaign`] over a session
/// that retains the prefixes of interest can fold straight into a `Fib` —
/// each prefix's route table is converted to forwarding actions and dropped
/// the moment the prefix finishes, so no `SimResult` (and no
/// `O(prefixes × ASes)` route collection) ever materializes.
impl CampaignSink for Fib {
    fn fold(&mut self, prefix: Prefix, outcome: PrefixOutcome) {
        if let Some(finals) = outcome.final_routes {
            for (asn, route) in finals {
                self.insert_route(asn, &prefix, &route);
            }
        }
    }

    fn merge(&mut self, other: Self) {
        // Chunks cover disjoint prefixes, so the overwrite-on-conflict
        // semantics of the inherent `merge` are moot here.
        Fib::merge(self, &other);
    }
}

fn action_of(route: &Route) -> FibAction {
    if route.blackholed {
        FibAction::Null
    } else {
        match route.source {
            RouteSource::Local => FibAction::Deliver,
            RouteSource::Ebgp(n) => FibAction::Forward(n),
            // A route server is not in the data path: traffic goes to the
            // member that announced, i.e. the head of the AS path.
            RouteSource::RouteServer(_) => match route.path.head() {
                Some(member) => FibAction::Forward(member),
                None => FibAction::Deliver,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::default();
        let asn = Asn::new(1);
        fib.insert(asn, p4("10.0.0.0/8"), FibAction::Forward(Asn::new(2)));
        fib.insert(asn, p4("10.1.0.0/16"), FibAction::Forward(Asn::new(3)));
        fib.insert(asn, p4("10.1.1.0/24"), FibAction::Null);

        assert_eq!(
            fib.lookup(asn, ip("10.9.9.9")),
            Some((p4("10.0.0.0/8"), FibAction::Forward(Asn::new(2))))
        );
        assert_eq!(
            fib.lookup(asn, ip("10.1.2.3")),
            Some((p4("10.1.0.0/16"), FibAction::Forward(Asn::new(3))))
        );
        assert_eq!(
            fib.lookup(asn, ip("10.1.1.77")),
            Some((p4("10.1.1.0/24"), FibAction::Null))
        );
        assert_eq!(fib.lookup(asn, ip("11.0.0.1")), None);
        assert_eq!(fib.lookup(Asn::new(9), ip("10.0.0.1")), None);
    }

    #[test]
    fn naive_and_fast_lookup_agree() {
        let mut fib = Fib::default();
        let asn = Asn::new(1);
        for (s, a) in [
            ("0.0.0.0/0", FibAction::Forward(Asn::new(9))),
            ("10.0.0.0/8", FibAction::Forward(Asn::new(2))),
            ("10.128.0.0/9", FibAction::Deliver),
            ("10.128.64.0/18", FibAction::Null),
        ] {
            fib.insert(asn, p4(s), a);
        }
        for probe in [
            "1.2.3.4",
            "10.0.0.1",
            "10.128.0.1",
            "10.128.64.1",
            "255.255.255.255",
        ] {
            assert_eq!(
                fib.lookup(asn, ip(probe)),
                fib.lookup_naive(asn, ip(probe)),
                "mismatch at {probe}"
            );
        }
    }

    #[test]
    fn campaign_sink_fold_matches_from_sim() {
        use bgpworms_routesim::{Campaign, Origination, RetainRoutes, SimSpec};
        use bgpworms_topology::{addressing::AddressingParams, PrefixAllocation, TopologyParams};

        let topo = TopologyParams::tiny().seed(12).build();
        let alloc = PrefixAllocation::assign(&topo, AddressingParams::default());
        let eps: Vec<Origination> = alloc
            .iter()
            .map(|(asn, prefix)| Origination::announce(asn, prefix, vec![]))
            .collect();
        let sim = SimSpec::new(&topo).retain(RetainRoutes::All).compile();

        let collected = Fib::from_sim(&sim.run(&eps));
        let streamed = Campaign::new(&sim).chunk_size(3).run(&eps, Fib::default);
        assert!(streamed.converged);

        // Identical lookups everywhere (Fib has no Eq; compare behaviour
        // at every origin address).
        assert_eq!(collected.len(), streamed.sink.len());
        for (asn, prefix) in alloc.iter() {
            if let bgpworms_types::Prefix::V4(p4) = prefix {
                let probe = p4.network() | 1;
                for node in topo.ases() {
                    assert_eq!(
                        collected.lookup(node.asn, probe),
                        streamed.sink.lookup(node.asn, probe),
                        "fib divergence at {} for {asn}/{prefix}",
                        node.asn
                    );
                }
            }
        }
    }

    #[test]
    fn default_route_matches_everything() {
        let mut fib = Fib::default();
        fib.insert(
            Asn::new(1),
            p4("0.0.0.0/0"),
            FibAction::Forward(Asn::new(2)),
        );
        assert!(fib.lookup(Asn::new(1), ip("203.0.113.5")).is_some());
    }
}
