//! An Atlas-like measurement platform: a fixed, seeded set of vantage
//! points that run ping/traceroute campaigns against target addresses —
//! the instrument behind the paper's §7.3 validation and §7.6 automated
//! blackhole-community survey.

use crate::fib::Fib;
use crate::probe::{ping, trace, TraceResult};
use bgpworms_topology::{PrefixAllocation, Tier, Topology};
use bgpworms_types::{Asn, Ipv4Prefix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// The probing platform: vantage-point ASes with a source address each.
#[derive(Debug, Clone)]
pub struct AtlasPlatform {
    /// Vantage points: (AS, source IP).
    pub vantage_points: Vec<(Asn, u32)>,
}

/// The result of one ping campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Per-VP responsiveness.
    pub responsive: BTreeMap<Asn, bool>,
}

impl CampaignResult {
    /// Number of responsive vantage points.
    pub fn responsive_count(&self) -> usize {
        self.responsive.values().filter(|&&b| b).count()
    }

    /// Total vantage points probed.
    pub fn total(&self) -> usize {
        self.responsive.len()
    }

    /// VPs that were responsive in `self` but unresponsive in `after` —
    /// §7.6's per-VP comparison: "fully responsive prior to advertising the
    /// community and then unresponsive once c is attached".
    pub fn lost_vps(&self, after: &CampaignResult) -> Vec<Asn> {
        self.responsive
            .iter()
            .filter(|(vp, &was)| was && !after.responsive.get(vp).copied().unwrap_or(false))
            .map(|(vp, _)| *vp)
            .collect()
    }
}

impl AtlasPlatform {
    /// Samples `n` vantage points among stub ASes with IPv4 space,
    /// deterministically from `seed`. "The set of 200 Atlas vantage points
    /// is randomly chosen, but constant across all measurements" (§7.6).
    pub fn sample(topo: &Topology, alloc: &PrefixAllocation, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA71A_5000_0000_0000);
        let mut candidates: Vec<(Asn, u32)> = topo
            .ases()
            .filter(|node| node.tier == Tier::Stub)
            .filter_map(|node| {
                let v4 = alloc.prefixes_of(node.asn).iter().find_map(|p| p.as_v4())?;
                Some((node.asn, PrefixAllocation::host_in(v4)))
            })
            .collect();
        candidates.shuffle(&mut rng);
        candidates.truncate(n);
        candidates.sort_unstable();
        AtlasPlatform {
            vantage_points: candidates,
        }
    }

    /// Pings `target` from every vantage point.
    pub fn ping_campaign(&self, fib: &Fib, target: u32) -> CampaignResult {
        let mut result = CampaignResult::default();
        for &(vp, src_ip) in &self.vantage_points {
            let res = ping(fib, vp, src_ip, target);
            result.responsive.insert(vp, res.responsive());
        }
        result
    }

    /// Traceroutes `target` from every vantage point.
    pub fn traceroute_campaign(&self, fib: &Fib, target: u32) -> BTreeMap<Asn, TraceResult> {
        self.vantage_points
            .iter()
            .map(|&(vp, _)| (vp, trace(fib, vp, target)))
            .collect()
    }

    /// A /32 target address inside a prefix, for campaigns against
    /// announced experiment prefixes.
    pub fn target_in(prefix: Ipv4Prefix) -> u32 {
        PrefixAllocation::host_in(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::FibAction;
    use bgpworms_topology::{addressing::AddressingParams, TopologyParams};

    fn setup() -> (Topology, PrefixAllocation) {
        let topo = TopologyParams::tiny().seed(2).build();
        let alloc = PrefixAllocation::assign(&topo, AddressingParams::default());
        (topo, alloc)
    }

    #[test]
    fn sampling_is_deterministic_and_stub_only() {
        let (topo, alloc) = setup();
        let a = AtlasPlatform::sample(&topo, &alloc, 10, 7);
        let b = AtlasPlatform::sample(&topo, &alloc, 10, 7);
        assert_eq!(a.vantage_points, b.vantage_points);
        assert_eq!(a.vantage_points.len(), 10);
        for (vp, ip) in &a.vantage_points {
            let node = topo.node(*vp).unwrap();
            assert_eq!(node.tier, Tier::Stub);
            let covering = alloc
                .prefixes_of(*vp)
                .iter()
                .filter_map(|p| p.as_v4())
                .any(|p| p.contains(*ip));
            assert!(covering, "source address belongs to the VP");
        }
        let c = AtlasPlatform::sample(&topo, &alloc, 10, 8);
        assert_ne!(a.vantage_points, c.vantage_points, "seed matters");
    }

    #[test]
    fn campaign_diff_identifies_lost_vps() {
        let (topo, alloc) = setup();
        let atlas = AtlasPlatform::sample(&topo, &alloc, 5, 7);
        // Synthetic FIB: everyone delivers to the target except in `after`,
        // where one VP's first hop null-routes it.
        let target_prefix: Ipv4Prefix = "99.99.0.0/24".parse().unwrap();
        let target = AtlasPlatform::target_in(target_prefix);
        let mut before = Fib::default();
        for &(vp, src) in &atlas.vantage_points {
            before.insert(vp, target_prefix, FibAction::Deliver);
            let _ = src;
        }
        // Delivering locally means responsive only if reverse works — make
        // the "target AS" the VP itself for simplicity: Deliver at VP means
        // forward path delivered at the VP, and reverse path is the VP
        // tracing to its own source address.
        for &(vp, src) in &atlas.vantage_points {
            let self_p = Ipv4Prefix::new(src, 32).unwrap();
            before.insert(vp, self_p, FibAction::Deliver);
        }
        let base = atlas.ping_campaign(&before, target);
        assert_eq!(base.responsive_count(), atlas.vantage_points.len());

        let mut after = before.clone();
        let victim = atlas.vantage_points[0].0;
        after.insert(victim, target_prefix, FibAction::Null);
        let post = atlas.ping_campaign(&after, target);
        assert_eq!(post.responsive_count(), atlas.vantage_points.len() - 1);
        assert_eq!(base.lost_vps(&post), vec![victim]);
        assert!(post.lost_vps(&base).is_empty());
    }
}
