//! AS-level ping and traceroute over the simulated forwarding plane.

use crate::fib::{Fib, FibAction};
use bgpworms_types::Asn;

/// Maximum AS hops before declaring a forwarding loop.
pub const MAX_HOPS: usize = 64;

/// Why a trace ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Reached the AS that delivers the destination locally.
    Delivered,
    /// Dropped at a null route (RTBH) at the last AS of the path.
    Blackholed,
    /// No route at the last AS of the path.
    Unreachable,
    /// Forwarding loop detected.
    Loop,
}

/// A forward-path trace: the AS-level path and its outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceResult {
    /// ASes traversed, starting with the source AS.
    pub path: Vec<Asn>,
    /// Why the trace ended.
    pub outcome: TraceOutcome,
}

impl TraceResult {
    /// True if the packet reached its destination AS.
    pub fn delivered(&self) -> bool {
        self.outcome == TraceOutcome::Delivered
    }

    /// The AS where the packet was dropped (for non-delivered traces).
    pub fn drop_point(&self) -> Option<Asn> {
        if self.delivered() {
            None
        } else {
            self.path.last().copied()
        }
    }
}

/// Result of a bidirectional ping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PingResult {
    /// The forward trace (source AS → destination IP).
    pub forward: TraceResult,
    /// The reverse trace (destination AS → source IP), when the forward
    /// path delivered.
    pub reverse: Option<TraceResult>,
}

impl PingResult {
    /// An echo reply arrives only when both directions deliver.
    pub fn responsive(&self) -> bool {
        self.forward.delivered()
            && self
                .reverse
                .as_ref()
                .map(TraceResult::delivered)
                .unwrap_or(false)
    }
}

/// Traces the AS-level forward path from `src_as` toward `dst_ip`.
pub fn trace(fib: &Fib, src_as: Asn, dst_ip: u32) -> TraceResult {
    let mut path = vec![src_as];
    let mut current = src_as;
    for _ in 0..MAX_HOPS {
        match fib.lookup(current, dst_ip) {
            None => {
                return TraceResult {
                    path,
                    outcome: TraceOutcome::Unreachable,
                }
            }
            Some((_, FibAction::Null)) => {
                return TraceResult {
                    path,
                    outcome: TraceOutcome::Blackholed,
                }
            }
            Some((_, FibAction::Deliver)) => {
                return TraceResult {
                    path,
                    outcome: TraceOutcome::Delivered,
                }
            }
            Some((_, FibAction::Forward(next))) => {
                if path.contains(&next) {
                    path.push(next);
                    return TraceResult {
                        path,
                        outcome: TraceOutcome::Loop,
                    };
                }
                path.push(next);
                current = next;
            }
        }
    }
    TraceResult {
        path,
        outcome: TraceOutcome::Loop,
    }
}

/// Simulates an ICMP echo: forward trace to `dst_ip`, and if delivered, a
/// reverse trace from the delivering AS back to `src_ip`.
pub fn ping(fib: &Fib, src_as: Asn, src_ip: u32, dst_ip: u32) -> PingResult {
    let forward = trace(fib, src_as, dst_ip);
    let reverse = if forward.delivered() {
        let dst_as = *forward.path.last().expect("non-empty path");
        Some(trace(fib, dst_as, src_ip))
    } else {
        None
    };
    PingResult { forward, reverse }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_types::Ipv4Prefix;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    /// Line: 1 → 2 → 3 where 3 originates 10.0.0.0/16 and 1 originates
    /// 20.0.0.0/16; both directions installed.
    fn line_fib() -> Fib {
        let mut fib = Fib::default();
        let (a1, a2, a3) = (Asn::new(1), Asn::new(2), Asn::new(3));
        fib.insert(a1, p4("10.0.0.0/16"), FibAction::Forward(a2));
        fib.insert(a2, p4("10.0.0.0/16"), FibAction::Forward(a3));
        fib.insert(a3, p4("10.0.0.0/16"), FibAction::Deliver);
        fib.insert(a3, p4("20.0.0.0/16"), FibAction::Forward(a2));
        fib.insert(a2, p4("20.0.0.0/16"), FibAction::Forward(a1));
        fib.insert(a1, p4("20.0.0.0/16"), FibAction::Deliver);
        fib
    }

    #[test]
    fn trace_delivers_along_the_line() {
        let fib = line_fib();
        let t = trace(&fib, Asn::new(1), ip("10.0.0.1"));
        assert_eq!(t.outcome, TraceOutcome::Delivered);
        assert_eq!(t.path, vec![Asn::new(1), Asn::new(2), Asn::new(3)]);
        assert!(t.delivered());
        assert_eq!(t.drop_point(), None);
    }

    #[test]
    fn ping_requires_both_directions() {
        let fib = line_fib();
        let res = ping(&fib, Asn::new(1), ip("20.0.0.1"), ip("10.0.0.1"));
        assert!(res.responsive());
        // Break the reverse path: AS2 loses the 20/16 route.
        let mut broken = line_fib();
        broken.insert(Asn::new(2), p4("20.0.0.0/16"), FibAction::Null);
        let res = ping(&broken, Asn::new(1), ip("20.0.0.1"), ip("10.0.0.1"));
        assert!(res.forward.delivered());
        assert!(!res.responsive(), "reverse blackhole kills the echo");
    }

    #[test]
    fn blackhole_detected_at_drop_point() {
        let mut fib = line_fib();
        // RTBH accepted at AS2 for a /32 inside 10/16.
        fib.insert(Asn::new(2), p4("10.0.0.7/32"), FibAction::Null);
        let t = trace(&fib, Asn::new(1), ip("10.0.0.7"));
        assert_eq!(t.outcome, TraceOutcome::Blackholed);
        assert_eq!(t.drop_point(), Some(Asn::new(2)));
        // Other addresses in the /16 still deliver (LPM).
        assert!(trace(&fib, Asn::new(1), ip("10.0.0.8")).delivered());
    }

    #[test]
    fn unreachable_when_no_route() {
        let fib = line_fib();
        let t = trace(&fib, Asn::new(1), ip("30.0.0.1"));
        assert_eq!(t.outcome, TraceOutcome::Unreachable);
        assert_eq!(t.drop_point(), Some(Asn::new(1)));
    }

    #[test]
    fn loops_are_detected() {
        let mut fib = Fib::default();
        fib.insert(
            Asn::new(1),
            p4("10.0.0.0/8"),
            FibAction::Forward(Asn::new(2)),
        );
        fib.insert(
            Asn::new(2),
            p4("10.0.0.0/8"),
            FibAction::Forward(Asn::new(1)),
        );
        let t = trace(&fib, Asn::new(1), ip("10.1.1.1"));
        assert_eq!(t.outcome, TraceOutcome::Loop);
        assert!(t.path.len() >= 3);
    }
}
