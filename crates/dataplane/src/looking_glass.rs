//! Looking glasses: per-AS RIB queries with router-style formatted output.
//!
//! The paper validates control-plane effects through public looking glasses
//! (§7.3–§7.5): community presence at the target, local-pref changes,
//! next-hop changes to null interfaces. This wraps a retained simulation
//! result in the same kind of query interface.

use bgpworms_routesim::{Route, SimResult};
use bgpworms_types::{Asn, Prefix};
use std::fmt::Write as _;

/// A looking glass over a finished simulation.
pub struct LookingGlass<'a> {
    result: &'a SimResult,
}

impl<'a> LookingGlass<'a> {
    /// Wraps a simulation result (must have retained routes for the
    /// prefixes of interest).
    pub fn new(result: &'a SimResult) -> Self {
        LookingGlass { result }
    }

    /// The best route of `asn` for `prefix`.
    pub fn route(&self, asn: Asn, prefix: &Prefix) -> Option<&Route> {
        self.result.route_at(asn, prefix)
    }

    /// True if the route at `asn` carries the given community — the check
    /// used to confirm community propagation along the attack path.
    pub fn sees_community(
        &self,
        asn: Asn,
        prefix: &Prefix,
        community: bgpworms_types::Community,
    ) -> bool {
        self.route(asn, prefix)
            .map(|r| r.has_community(community))
            .unwrap_or(false)
    }

    /// `show route` style output for one AS and prefix.
    pub fn show(&self, asn: Asn, prefix: &Prefix) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{asn}> show route {prefix}");
        match self.route(asn, prefix) {
            None => {
                let _ = writeln!(out, "  %Network not in table");
            }
            Some(r) => {
                let path = if r.path.is_empty() {
                    "(local)".to_string()
                } else {
                    r.path.to_string()
                };
                let _ = writeln!(out, "  AS path: {path}");
                let _ = writeln!(out, "  Local preference: {}", r.local_pref);
                let next_hop = if r.blackholed {
                    "Null0 (blackholed)".to_string()
                } else {
                    match r.source.neighbor() {
                        Some(n) => format!("via {n}"),
                        None => "self".to_string(),
                    }
                };
                let _ = writeln!(out, "  Next hop: {next_hop}");
                if r.communities.is_empty() {
                    let _ = writeln!(out, "  Communities: (none)");
                } else {
                    let list: Vec<String> = r.communities.iter().map(|c| c.to_string()).collect();
                    let _ = writeln!(out, "  Communities: {}", list.join(" "));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_routesim::{Origination, SimSpec};
    use bgpworms_topology::{EdgeKind, Tier, Topology};
    use bgpworms_types::Community;

    fn run() -> SimResult {
        let mut topo = Topology::new();
        topo.add_simple(Asn::new(1), Tier::Tier1);
        topo.add_simple(Asn::new(2), Tier::Stub);
        topo.add_edge(Asn::new(1), Asn::new(2), EdgeKind::ProviderToCustomer);
        let sim = SimSpec::new(&topo)
            .retain(bgpworms_routesim::engine::RetainRoutes::All)
            .compile();
        sim.run(&[Origination::announce(
            Asn::new(2),
            "10.0.0.0/16".parse().unwrap(),
            vec![Community::new(2, 100)],
        )])
    }

    #[test]
    fn show_formats_route_details() {
        let res = run();
        let lg = LookingGlass::new(&res);
        let p: Prefix = "10.0.0.0/16".parse().unwrap();
        let text = lg.show(Asn::new(1), &p);
        assert!(text.contains("AS path: 2"));
        assert!(text.contains("Communities: 2:100"));
        assert!(text.contains("via AS2"));
        assert!(lg.sees_community(Asn::new(1), &p, Community::new(2, 100)));
        assert!(!lg.sees_community(Asn::new(1), &p, Community::new(2, 101)));
    }

    #[test]
    fn show_reports_missing_routes() {
        let res = run();
        let lg = LookingGlass::new(&res);
        let missing: Prefix = "99.0.0.0/16".parse().unwrap();
        assert!(lg.show(Asn::new(1), &missing).contains("not in table"));
        assert!(lg.route(Asn::new(1), &missing).is_none());
    }

    #[test]
    fn local_route_shows_self() {
        let res = run();
        let lg = LookingGlass::new(&res);
        let p: Prefix = "10.0.0.0/16".parse().unwrap();
        let text = lg.show(Asn::new(2), &p);
        assert!(text.contains("(local)"));
        assert!(text.contains("self"));
    }
}
