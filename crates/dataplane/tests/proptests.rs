//! Property-based tests for the data plane: longest-prefix-match
//! correctness by differential testing, and traceroute termination on
//! adversarial (loopy) forwarding tables.

use bgpworms_dataplane::{trace, Fib, FibAction, TraceOutcome};
use bgpworms_types::{Asn, Ipv4Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(addr, len).expect("len ok"))
}

fn arb_action() -> impl Strategy<Value = FibAction> {
    prop_oneof![
        (1u32..50).prop_map(|n| FibAction::Forward(Asn::new(n))),
        Just(FibAction::Deliver),
        Just(FibAction::Null),
    ]
}

proptest! {
    #[test]
    fn fast_lookup_equals_naive_scan(
        entries in proptest::collection::vec((arb_prefix(), arb_action()), 0..40),
        probes in proptest::collection::vec(any::<u32>(), 0..20),
    ) {
        let asn = Asn::new(1);
        let mut fib = Fib::default();
        for (p, a) in &entries {
            fib.insert(asn, *p, *a);
        }
        for &ip in &probes {
            let fast = fib.lookup(asn, ip);
            let naive = fib.lookup_naive(asn, ip);
            // Both must agree on the matched prefix length (the action of
            // the longest match is whatever was inserted last for that
            // exact prefix, identically in both paths).
            prop_assert_eq!(
                fast.map(|(p, _)| p.len()),
                naive.map(|(p, _)| p.len()),
                "LPM length mismatch at {}",
                std::net::Ipv4Addr::from(ip)
            );
            prop_assert_eq!(fast, naive);
        }
    }

    #[test]
    fn trace_always_terminates_with_consistent_outcome(
        edges in proptest::collection::vec((1u32..30, 1u32..30), 0..60),
        dst in any::<u32>(),
        deliver_at in 1u32..30,
    ) {
        // Random (possibly loopy) forwarding graph over a default route.
        let default = Ipv4Prefix::new(0, 0).expect("default");
        let mut fib = Fib::default();
        for &(from, to) in &edges {
            fib.insert(Asn::new(from), default, FibAction::Forward(Asn::new(to)));
        }
        fib.insert(Asn::new(deliver_at), default, FibAction::Deliver);

        let t = trace(&fib, Asn::new(1), dst);
        // Bounded length (MAX_HOPS plus endpoints).
        prop_assert!(t.path.len() <= 70);
        prop_assert_eq!(t.path.first(), Some(&Asn::new(1)));
        match t.outcome {
            TraceOutcome::Delivered => {
                prop_assert_eq!(t.path.last(), Some(&Asn::new(deliver_at)));
            }
            TraceOutcome::Loop => {
                // The repeated AS is recorded at the tail.
                let last = *t.path.last().unwrap();
                prop_assert!(
                    t.path.len() > 60 || t.path.iter().filter(|&&a| a == last).count() >= 2
                );
            }
            TraceOutcome::Unreachable | TraceOutcome::Blackholed => {}
        }
        // Apart from a final loop-back hop, no AS repeats.
        let body = &t.path[..t.path.len().saturating_sub(1)];
        let mut seen = std::collections::BTreeSet::new();
        prop_assert!(body.iter().all(|a| seen.insert(*a)), "body repeats: {:?}", t.path);
    }

    #[test]
    fn blackhole_host_route_always_wins_over_covering_forward(
        net in any::<u32>(),
        len in 8u8..=24,
        offset in any::<u32>(),
    ) {
        // A /32 null route inside a covering Forward prefix — the §7.3
        // "next-hop changed to a null interface" situation.
        let covering = Ipv4Prefix::new(net, len).expect("len ok");
        let span = covering.num_addresses() as u32; // len ≤ 24 ⇒ fits u32
        let host_ip = covering.network().wrapping_add(offset % span);
        let host = Ipv4Prefix::new(host_ip, 32).expect("host route");
        let asn = Asn::new(1);
        let mut fib = Fib::default();
        fib.insert(asn, covering, FibAction::Forward(Asn::new(2)));
        fib.insert(asn, host, FibAction::Null);
        let (matched, action) = fib.lookup(asn, host_ip).expect("covered");
        prop_assert_eq!(matched.len(), 32);
        prop_assert_eq!(action, FibAction::Null);
        // Neighboring addresses in the covering prefix still forward.
        if span > 1 {
            let other = covering.network().wrapping_add((offset + 1) % span);
            if other != host_ip {
                let (m2, a2) = fib.lookup(asn, other).expect("covered");
                prop_assert_eq!(m2, covering);
                prop_assert_eq!(a2, FibAction::Forward(Asn::new(2)));
            }
        }
    }
}
