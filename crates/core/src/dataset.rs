//! Dataset overview statistics — Table 1 of the paper: per platform, the
//! message volume, prefix counts, collector/peer counts, distinct
//! communities, and the origin/transit/stub AS breakdown.

use crate::observation::ObservationSet;
use crate::table::{text_table, thousands};
use bgpworms_types::{Asn, Community};
use std::collections::BTreeSet;

/// One platform row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformStats {
    /// Platform name (RIS / RV / IS / PCH, plus a Total row).
    pub platform: String,
    /// Raw BGP messages.
    pub messages: u64,
    /// Distinct IPv4 prefixes.
    pub v4_prefixes: usize,
    /// Distinct IPv6 prefixes.
    pub v6_prefixes: usize,
    /// Number of collectors.
    pub collectors: usize,
    /// Peering sessions (distinct (collector, peer) pairs — "IP peers").
    pub ip_peers: usize,
    /// Distinct peer ASes.
    pub as_peers: usize,
    /// Distinct communities.
    pub communities: usize,
    /// Distinct ASes seen anywhere on paths.
    pub ases: usize,
    /// ASes seen as path origin.
    pub origin: usize,
    /// ASes seen in a non-origin path position ("transit", §4.3 footnote:
    /// neither the origin nor the collector).
    pub transit: usize,
    /// ASes never seen in a transit position.
    pub stub: usize,
}

/// The full Table 1: per-platform rows plus the union row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetOverview {
    /// One row per platform, then the Total row.
    pub rows: Vec<PlatformStats>,
}

fn stats_for(name: &str, set: &ObservationSet) -> PlatformStats {
    let mut v4: BTreeSet<_> = BTreeSet::new();
    let mut v6: BTreeSet<_> = BTreeSet::new();
    let mut communities: BTreeSet<Community> = BTreeSet::new();
    let mut ases: BTreeSet<Asn> = BTreeSet::new();
    let mut origin: BTreeSet<Asn> = BTreeSet::new();
    let mut transit: BTreeSet<Asn> = BTreeSet::new();
    let mut collectors: BTreeSet<&str> = BTreeSet::new();
    let mut sessions: BTreeSet<(&str, Asn)> = BTreeSet::new();
    let mut peer_ases: BTreeSet<Asn> = BTreeSet::new();

    for obs in &set.observations {
        collectors.insert(obs.collector.as_str());
        sessions.insert((obs.collector.as_str(), obs.peer));
        peer_ases.insert(obs.peer);
        if obs.is_withdrawal {
            if obs.prefix.is_v4() {
                v4.insert(obs.prefix);
            } else {
                v6.insert(obs.prefix);
            }
            continue;
        }
        if obs.prefix.is_v4() {
            v4.insert(obs.prefix);
        } else {
            v6.insert(obs.prefix);
        }
        communities.extend(obs.communities.iter().copied());
        for (i, &asn) in obs.path.iter().enumerate() {
            ases.insert(asn);
            if i == obs.path.len() - 1 {
                origin.insert(asn);
            } else {
                transit.insert(asn);
            }
        }
    }
    // collectors that saw zero observations still count via messages list
    for (_, collector, _) in &set.messages {
        collectors.insert(collector.as_str());
    }

    let messages: u64 = set.messages.iter().map(|(_, _, n)| n).sum();
    let stub = ases.difference(&transit).count();
    PlatformStats {
        platform: name.to_string(),
        messages,
        v4_prefixes: v4.len(),
        v6_prefixes: v6.len(),
        collectors: collectors.len(),
        ip_peers: sessions.len(),
        as_peers: peer_ases.len(),
        communities: communities.len(),
        ases: ases.len(),
        origin: origin.len(),
        transit: transit.len(),
        stub,
    }
}

impl DatasetOverview {
    /// Computes Table 1 from a parsed observation set.
    pub fn compute(set: &ObservationSet) -> Self {
        let mut rows = Vec::new();
        for platform in set.platforms() {
            let slice = set.platform_slice(&platform);
            rows.push(stats_for(&platform, &slice));
        }
        rows.push(stats_for("Total", set));
        DatasetOverview { rows }
    }

    /// Renders the table in the paper's column order.
    pub fn render(&self) -> String {
        let headers = [
            "Source",
            "Messages",
            "IPv4 pfx",
            "IPv6 pfx",
            "Collectors",
            "IP peers",
            "AS peers",
            "Communities",
            "ASes",
            "Origin",
            "Transit",
            "Stub",
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.platform.clone(),
                    thousands(r.messages),
                    thousands(r.v4_prefixes as u64),
                    thousands(r.v6_prefixes as u64),
                    thousands(r.collectors as u64),
                    thousands(r.ip_peers as u64),
                    thousands(r.as_peers as u64),
                    thousands(r.communities as u64),
                    thousands(r.ases as u64),
                    thousands(r.origin as u64),
                    thousands(r.transit as u64),
                    thousands(r.stub as u64),
                ]
            })
            .collect();
        text_table(&headers, &rows)
    }

    /// The Total row.
    pub fn total(&self) -> &PlatformStats {
        self.rows.last().expect("total row always present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::UpdateObservation;
    use bgpworms_types::Prefix;

    fn obs(
        platform: &str,
        collector: &str,
        peer: u32,
        path: &[u32],
        comms: &[(u16, u16)],
        prefix: &str,
    ) -> UpdateObservation {
        UpdateObservation {
            platform: platform.into(),
            collector: collector.into(),
            time: 0,
            peer: Asn::new(peer),
            prefix: prefix.parse().unwrap(),
            path: path.iter().map(|&n| Asn::new(n)).collect(),
            raw_hop_count: path.len(),
            prepends: Vec::new(),
            large_communities: Vec::new(),
            communities: comms.iter().map(|&(a, v)| Community::new(a, v)).collect(),
            is_withdrawal: false,
        }
    }

    fn sample_set() -> ObservationSet {
        ObservationSet {
            observations: vec![
                obs("RIS", "rrc00", 3, &[3, 2, 1], &[(2, 100)], "10.0.0.0/16"),
                obs(
                    "RIS",
                    "rrc00",
                    3,
                    &[3, 2, 4],
                    &[(2, 100), (3, 5)],
                    "20.0.0.0/16",
                ),
                obs("RIS", "rrc01", 5, &[5, 1], &[], "10.0.0.0/16"),
                obs(
                    "RV",
                    "route-views2",
                    6,
                    &[6, 2, 1],
                    &[(9, 1)],
                    "2001:db8::/32",
                ),
            ],
            messages: vec![
                ("RIS".into(), "rrc00".into(), 2),
                ("RIS".into(), "rrc01".into(), 1),
                ("RV".into(), "route-views2".into(), 1),
            ],
        }
    }

    #[test]
    fn per_platform_and_total_rows() {
        let overview = DatasetOverview::compute(&sample_set());
        assert_eq!(overview.rows.len(), 3); // RIS, RV, Total
        let ris = &overview.rows[0];
        assert_eq!(ris.platform, "RIS");
        assert_eq!(ris.messages, 3);
        assert_eq!(ris.collectors, 2);
        assert_eq!(ris.ip_peers, 2);
        assert_eq!(ris.as_peers, 2);
        assert_eq!(ris.v4_prefixes, 2);
        assert_eq!(ris.v6_prefixes, 0);
        assert_eq!(ris.communities, 2); // 2:100 and 3:5
                                        // paths: {3,2,1,4,5}; origins {1,4}; transit {3,2,5}? positions:
                                        // [3,2,1]: origin 1, transit 3,2; [3,2,4]: origin 4, transit 3,2;
                                        // [5,1]: origin 1, transit 5.
        assert_eq!(ris.ases, 5);
        assert_eq!(ris.origin, 2);
        assert_eq!(ris.transit, 3);
        assert_eq!(ris.stub, 2);

        let total = overview.total();
        assert_eq!(total.platform, "Total");
        assert_eq!(total.messages, 4);
        assert_eq!(total.v6_prefixes, 1);
        assert_eq!(total.collectors, 3);
        assert_eq!(total.communities, 3);
    }

    #[test]
    fn render_contains_all_platforms() {
        let overview = DatasetOverview::compute(&sample_set());
        let text = overview.render();
        assert!(text.contains("RIS"));
        assert!(text.contains("RV"));
        assert!(text.contains("Total"));
        assert!(text.contains("Communities"));
    }

    #[test]
    fn withdrawals_count_prefixes_but_not_paths() {
        let mut set = sample_set();
        set.observations.push(UpdateObservation {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            time: 1,
            peer: Asn::new(3),
            prefix: "30.0.0.0/16".parse::<Prefix>().unwrap(),
            path: vec![],
            raw_hop_count: 0,
            prepends: Vec::new(),
            large_communities: Vec::new(),
            communities: vec![],
            is_withdrawal: true,
        });
        let overview = DatasetOverview::compute(&set);
        let ris = &overview.rows[0];
        assert_eq!(ris.v4_prefixes, 3, "withdrawn prefix counted");
        assert_eq!(ris.ases, 5, "no path contribution from withdrawals");
    }
}
