//! Community propagation analysis — the core of §4.3:
//!
//! * on-path vs. off-path attribution of community owners (Table 2);
//! * propagation-distance ECDFs, all communities vs. blackhole
//!   communities (Fig 5a);
//! * relative propagation distance by AS-path length (Fig 5b);
//! * the transit ASes that relay other ASes' communities (the paper's
//!   "2.2 K of 15.5 K transit ASes ⇒ 14 %" headline).
//!
//! Attribution is conservative exactly as in the paper: a community
//! `A:value` seen on path `…, X, A, Y, …` is assumed to have been tagged
//! *by A itself* (not received by A from the origin side), so measured
//! distances are lower bounds. Distances count AS edges from the tagger to
//! the collector's peer **plus the edge to the monitor**; communities owned
//! by the peer itself (distance 1) are included in Fig 5a but excluded from
//! Fig 5b, following the paper.

use crate::observation::{BlackholeDetector, ObservationSet};
use crate::stats::Ecdf;
use bgpworms_types::{Asn, Community};
use std::collections::{BTreeMap, BTreeSet};

/// One distance sample: a (community, prefix, peer)-deduplicated instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceSample {
    /// The community.
    pub community: Community,
    /// AS edges travelled, including the edge to the monitor.
    pub distance: usize,
    /// De-prepended path length (ASes) of the carrying announcement.
    pub path_len: usize,
    /// Classified as a blackhole community.
    pub is_blackhole: bool,
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Platform (or Total).
    pub platform: String,
    /// Distinct community-owner ASes.
    pub total: usize,
    /// Owners that are not direct collector peers.
    pub without_collector_peer: usize,
    /// Owners seen on the AS path of at least one carrying update.
    pub on_path: usize,
    /// Owners seen off-path on at least one carrying update.
    pub off_path: usize,
    /// Off-path owners with public (non-private, non-reserved) ASNs.
    pub off_path_without_private: usize,
}

/// The full propagation analysis.
#[derive(Debug, Clone)]
pub struct PropagationAnalysis {
    /// Deduplicated on-path distance samples.
    pub samples: Vec<DistanceSample>,
    /// Table 2 rows (per platform + Total).
    pub table2: Vec<Table2Row>,
    /// ASes that relayed at least one foreign community (not counting
    /// direct collector peers).
    pub forwarders: BTreeSet<Asn>,
    /// All transit ASes in the dataset (non-origin path positions).
    pub transit_ases: BTreeSet<Asn>,
}

impl PropagationAnalysis {
    /// Runs the analysis.
    pub fn compute(set: &ObservationSet, detector: &BlackholeDetector) -> Self {
        let collector_peers = set.collector_peers();

        let mut seen: BTreeSet<(Community, bgpworms_types::Prefix, Asn)> = BTreeSet::new();
        let mut samples = Vec::new();
        let mut forwarders: BTreeSet<Asn> = BTreeSet::new();
        let mut transit_ases: BTreeSet<Asn> = BTreeSet::new();

        for obs in set.announcements() {
            let path_len = obs.path.len();
            for (i, &asn) in obs.path.iter().enumerate() {
                if i != path_len.saturating_sub(1) {
                    transit_ases.insert(asn);
                }
            }
            for &c in &obs.communities {
                let Some(idx) = obs.position_of(c.owner()) else {
                    continue; // off-path: no distance defined
                };
                // Transit forwarders: ASes strictly between the tagger and
                // the collector peer relay a foreign community.
                for j in 1..idx {
                    forwarders.insert(obs.path[j]);
                }
                if !seen.insert((c, obs.prefix, obs.peer)) {
                    continue;
                }
                samples.push(DistanceSample {
                    community: c,
                    distance: idx + 1,
                    path_len,
                    is_blackhole: detector.is_blackhole(c),
                });
            }
        }
        forwarders.retain(|a| !collector_peers.contains(a));

        // Table 2 per platform + total.
        let mut table2 = Vec::new();
        for platform in set.platforms() {
            table2.push(table2_row(&platform, &set.platform_slice(&platform)));
        }
        table2.push(table2_row("Total", set));

        PropagationAnalysis {
            samples,
            table2,
            forwarders,
            transit_ases,
        }
    }

    /// Fig 5(a): ECDF of propagation distance over all communities.
    pub fn fig5a_all(&self) -> Ecdf {
        Ecdf::new(self.samples.iter().map(|s| s.distance as f64))
    }

    /// Fig 5(a): ECDF of propagation distance over blackhole communities.
    pub fn fig5a_blackhole(&self) -> Ecdf {
        Ecdf::new(
            self.samples
                .iter()
                .filter(|s| s.is_blackhole)
                .map(|s| s.distance as f64),
        )
    }

    /// Fig 5(b): relative propagation distance ECDF per AS-path length.
    /// Communities of the monitor-adjacent AS (distance 1) are excluded.
    pub fn fig5b(&self) -> BTreeMap<usize, Ecdf> {
        let mut buckets: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for s in &self.samples {
            if s.distance <= 1 || s.path_len == 0 {
                continue;
            }
            buckets
                .entry(s.path_len)
                .or_default()
                .push(s.distance as f64 / s.path_len as f64);
        }
        buckets
            .into_iter()
            .map(|(k, v)| (k, Ecdf::new(v)))
            .collect()
    }

    /// The headline ratio: transit ASes relaying foreign communities over
    /// all transit ASes.
    pub fn forwarder_fraction(&self) -> f64 {
        if self.transit_ases.is_empty() {
            return 0.0;
        }
        self.forwarders.len() as f64 / self.transit_ases.len() as f64
    }
}

fn table2_row(platform: &str, set: &ObservationSet) -> Table2Row {
    let collector_peers = set.collector_peers();
    let mut owners: BTreeSet<Asn> = BTreeSet::new();
    let mut on_path: BTreeSet<Asn> = BTreeSet::new();
    let mut off_path: BTreeSet<Asn> = BTreeSet::new();

    for obs in set.announcements() {
        for &c in &obs.communities {
            let owner = c.owner();
            owners.insert(owner);
            if obs.position_of(owner).is_some() {
                on_path.insert(owner);
            } else {
                off_path.insert(owner);
            }
        }
    }

    Table2Row {
        platform: platform.to_string(),
        total: owners.len(),
        without_collector_peer: owners
            .iter()
            .filter(|a| !collector_peers.contains(a))
            .count(),
        on_path: on_path.len(),
        off_path: off_path.len(),
        off_path_without_private: off_path.iter().filter(|a| a.is_public()).count(),
    }
}

/// Renders Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    use crate::table::text_table;
    let headers = [
        "Source",
        "Total ASes",
        "w/o coll. peer",
        "on-path",
        "off-path",
        "off-path w/o private",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                r.total.to_string(),
                r.without_collector_peer.to_string(),
                r.on_path.to_string(),
                r.off_path.to_string(),
                r.off_path_without_private.to_string(),
            ]
        })
        .collect();
    text_table(&headers, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::UpdateObservation;

    fn obs(peer: u32, path: &[u32], comms: &[(u16, u16)], prefix: &str) -> UpdateObservation {
        UpdateObservation {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            time: 0,
            peer: Asn::new(peer),
            prefix: prefix.parse().unwrap(),
            path: path.iter().map(|&n| Asn::new(n)).collect(),
            raw_hop_count: path.len(),
            prepends: Vec::new(),
            large_communities: Vec::new(),
            communities: comms.iter().map(|&(a, v)| Community::new(a, v)).collect(),
            is_withdrawal: false,
        }
    }

    fn set(observations: Vec<UpdateObservation>) -> ObservationSet {
        ObservationSet {
            observations,
            messages: vec![],
        }
    }

    #[test]
    fn distance_is_index_plus_monitor_edge() {
        // Path AS5 AS4 AS3 AS2 AS1 (§4.3's example): community 3:Y is
        // attributed to AS3 at index 2 → distance 3.
        let s = set(vec![obs(
            5,
            &[5, 4, 3, 2, 1],
            &[(3, 9), (1, 8)],
            "10.0.0.0/16",
        )]);
        let a = PropagationAnalysis::compute(&s, &BlackholeDetector::conventional());
        let d: BTreeMap<Community, usize> = a
            .samples
            .iter()
            .map(|s| (s.community, s.distance))
            .collect();
        assert_eq!(d[&Community::new(3, 9)], 3);
        assert_eq!(
            d[&Community::new(1, 8)],
            5,
            "origin community travels whole path"
        );
    }

    #[test]
    fn off_path_communities_have_no_distance() {
        let s = set(vec![obs(5, &[5, 1], &[(77, 1)], "10.0.0.0/16")]);
        let a = PropagationAnalysis::compute(&s, &BlackholeDetector::conventional());
        assert!(a.samples.is_empty());
        let total = a.table2.last().unwrap();
        assert_eq!(total.total, 1);
        assert_eq!(total.off_path, 1);
        assert_eq!(total.on_path, 0);
    }

    #[test]
    fn dedup_by_community_prefix_peer() {
        let o = obs(5, &[5, 3, 1], &[(3, 9)], "10.0.0.0/16");
        let s = set(vec![o.clone(), o]);
        let a = PropagationAnalysis::compute(&s, &BlackholeDetector::conventional());
        assert_eq!(a.samples.len(), 1);
    }

    #[test]
    fn forwarders_are_between_tagger_and_peer() {
        // Community 1:X on path [5,4,3,2,1]: forwarders are 4,3,2 (between
        // origin tagger idx 4 and peer idx 0); peer 5 excluded.
        let s = set(vec![obs(5, &[5, 4, 3, 2, 1], &[(1, 7)], "10.0.0.0/16")]);
        let a = PropagationAnalysis::compute(&s, &BlackholeDetector::conventional());
        let expect: BTreeSet<Asn> = [4, 3, 2].map(Asn::new).into();
        assert_eq!(a.forwarders, expect);
        // transit ASes: all non-origin positions = {5,4,3,2}
        assert_eq!(a.transit_ases.len(), 4);
        assert!((a.forwarder_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn peer_owned_communities_do_not_create_forwarders() {
        let s = set(vec![obs(5, &[5, 1], &[(5, 1)], "10.0.0.0/16")]);
        let a = PropagationAnalysis::compute(&s, &BlackholeDetector::conventional());
        assert!(a.forwarders.is_empty());
        assert_eq!(a.samples.len(), 1);
        assert_eq!(a.samples[0].distance, 1);
    }

    #[test]
    fn fig5a_blackhole_subset() {
        let s = set(vec![
            obs(5, &[5, 3, 1], &[(3, 666)], "10.0.0.0/32"),
            obs(5, &[5, 4, 3, 2, 1], &[(1, 7)], "20.0.0.0/16"),
        ]);
        let a = PropagationAnalysis::compute(&s, &BlackholeDetector::conventional());
        assert_eq!(a.fig5a_all().len(), 2);
        let bh = a.fig5a_blackhole();
        assert_eq!(bh.len(), 1);
        assert_eq!(bh.quantile(1.0), Some(2.0), "3:666 at index 1 → distance 2");
    }

    #[test]
    fn fig5b_excludes_monitor_adjacent_and_normalizes() {
        let s = set(vec![obs(
            5,
            &[5, 4, 3, 2, 1],
            &[(5, 1), (3, 9)],
            "10.0.0.0/16",
        )]);
        let a = PropagationAnalysis::compute(&s, &BlackholeDetector::conventional());
        let fig = a.fig5b();
        let e = &fig[&5];
        assert_eq!(e.len(), 1, "peer-owned community excluded");
        // 3:9 at distance 3 of path length 5 → 0.6
        assert_eq!(e.quantile(1.0), Some(0.6));
    }

    #[test]
    fn table2_excludes_private_from_last_column() {
        let s = set(vec![obs(
            5,
            &[5, 1],
            &[(64_512, 1), (77, 1), (5, 2)],
            "10.0.0.0/16",
        )]);
        let a = PropagationAnalysis::compute(&s, &BlackholeDetector::conventional());
        let row = a.table2.last().unwrap();
        assert_eq!(row.total, 3);
        assert_eq!(row.on_path, 1); // AS5
        assert_eq!(row.off_path, 2); // 64512 and 77
        assert_eq!(row.off_path_without_private, 1); // 77 only
        assert_eq!(row.without_collector_peer, 2, "AS5 is the collector peer");
        let rendered = render_table2(&a.table2);
        assert!(rendered.contains("off-path"));
    }
}
