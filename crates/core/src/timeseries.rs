//! Community use over time — Fig 3: unique communities, unique ASes
//! encoded in communities, absolute community count, and table size, per
//! yearly snapshot.

use crate::observation::ObservationSet;
use bgpworms_types::{Asn, Community};
use std::collections::BTreeSet;

/// One snapshot's aggregate numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Label (e.g. the year).
    pub label: String,
    /// Distinct communities observed.
    pub unique_communities: usize,
    /// Distinct ASNs in community high halves (assuming the `AS:value`
    /// convention, as the paper does).
    pub unique_asns_in_communities: usize,
    /// Total community instances across all updates.
    pub absolute_communities: u64,
    /// Announcement count (stand-in for "BGP table entries").
    pub table_entries: u64,
}

impl SnapshotStats {
    /// Computes the Fig 3 quantities for one snapshot.
    pub fn compute(label: &str, set: &ObservationSet) -> Self {
        let mut unique: BTreeSet<Community> = BTreeSet::new();
        let mut owners: BTreeSet<Asn> = BTreeSet::new();
        let mut absolute = 0u64;
        let mut entries = 0u64;
        for obs in set.announcements() {
            entries += 1;
            absolute += obs.communities.len() as u64;
            for &c in &obs.communities {
                unique.insert(c);
                owners.insert(c.owner());
            }
        }
        SnapshotStats {
            label: label.to_string(),
            unique_communities: unique.len(),
            unique_asns_in_communities: owners.len(),
            absolute_communities: absolute,
            table_entries: entries,
        }
    }
}

/// Renders a Fig 3 series as a text table.
pub fn render_series(series: &[SnapshotStats]) -> String {
    use crate::table::{text_table, thousands};
    let headers = [
        "Snapshot",
        "# Unique communities",
        "# Unique ASes in communities",
        "# Absolute communities",
        "# Table entries",
    ];
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                thousands(s.unique_communities as u64),
                thousands(s.unique_asns_in_communities as u64),
                thousands(s.absolute_communities),
                thousands(s.table_entries),
            ]
        })
        .collect();
    text_table(&headers, &rows)
}

/// True when every tracked quantity is non-decreasing across the series —
/// the growth trend Fig 3 shows from 2010 to 2018.
pub fn is_monotonic_growth(series: &[SnapshotStats]) -> bool {
    series.windows(2).all(|w| {
        w[1].unique_communities >= w[0].unique_communities
            && w[1].unique_asns_in_communities >= w[0].unique_asns_in_communities
            && w[1].absolute_communities >= w[0].absolute_communities
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::UpdateObservation;

    fn obs(comms: &[(u16, u16)]) -> UpdateObservation {
        UpdateObservation {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            time: 0,
            peer: Asn::new(3),
            prefix: "10.0.0.0/16".parse().unwrap(),
            path: vec![Asn::new(3), Asn::new(1)],
            raw_hop_count: 2,
            prepends: Vec::new(),
            large_communities: Vec::new(),
            communities: comms.iter().map(|&(a, v)| Community::new(a, v)).collect(),
            is_withdrawal: false,
        }
    }

    #[test]
    fn snapshot_counts() {
        let set = ObservationSet {
            observations: vec![obs(&[(1, 1), (1, 2)]), obs(&[(1, 1), (2, 1)]), obs(&[])],
            messages: vec![],
        };
        let s = SnapshotStats::compute("2018", &set);
        assert_eq!(s.unique_communities, 3);
        assert_eq!(s.unique_asns_in_communities, 2);
        assert_eq!(s.absolute_communities, 4);
        assert_eq!(s.table_entries, 3);
    }

    #[test]
    fn growth_check() {
        let a = SnapshotStats {
            label: "2010".into(),
            unique_communities: 10,
            unique_asns_in_communities: 5,
            absolute_communities: 100,
            table_entries: 50,
        };
        let mut b = a.clone();
        b.label = "2018".into();
        b.unique_communities = 20;
        b.absolute_communities = 300;
        assert!(is_monotonic_growth(&[a.clone(), b.clone()]));
        let mut c = a.clone();
        c.unique_communities = 5;
        assert!(!is_monotonic_growth(&[b, c]));
    }

    #[test]
    fn render_has_all_columns() {
        let s = SnapshotStats {
            label: "2018".into(),
            unique_communities: 63_797,
            unique_asns_in_communities: 5_659,
            absolute_communities: 1_000_000,
            table_entries: 967_499,
        };
        let text = render_series(&[s]);
        assert!(text.contains("63,797"));
        assert!(text.contains("Unique ASes"));
    }
}
