//! Community usage statistics — Fig 4(a): the fraction of updates carrying
//! at least one community per collector, and Fig 4(b): ECDFs of communities
//! and associated ASes per update.

use crate::observation::ObservationSet;
use crate::stats::Ecdf;
use std::collections::BTreeMap;

/// Per-collector usage fractions and per-update distributions.
#[derive(Debug, Clone)]
pub struct UsageAnalysis {
    /// `(platform, collector) → fraction of announcements with ≥1
    /// community` (Fig 4a's per-collector points).
    pub per_collector_fraction: BTreeMap<(String, String), f64>,
    /// ECDF of communities per announcement (Fig 4b, blue dots).
    pub communities_per_update: Ecdf,
    /// ECDF of distinct community-owner ASNs per announcement
    /// (Fig 4b, orange triangles).
    pub asns_per_update: Ecdf,
    /// Overall fraction of announcements with at least one community
    /// (the paper's "more than 75 %").
    pub overall_fraction: f64,
}

impl UsageAnalysis {
    /// Computes the usage statistics over all announcements.
    pub fn compute(set: &ObservationSet) -> Self {
        let mut per_collector: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        let mut comm_counts: Vec<f64> = Vec::new();
        let mut asn_counts: Vec<f64> = Vec::new();
        let mut with = 0u64;
        let mut total = 0u64;

        for obs in set.announcements() {
            let entry = per_collector
                .entry((obs.platform.clone(), obs.collector.clone()))
                .or_insert((0, 0));
            entry.1 += 1;
            total += 1;
            if obs.has_communities() {
                entry.0 += 1;
                with += 1;
            }
            comm_counts.push(obs.communities.len() as f64);
            asn_counts.push(obs.community_owners().len() as f64);
        }

        UsageAnalysis {
            per_collector_fraction: per_collector
                .into_iter()
                .map(|(k, (w, t))| (k, if t == 0 { 0.0 } else { w as f64 / t as f64 }))
                .collect(),
            communities_per_update: Ecdf::new(comm_counts),
            asns_per_update: Ecdf::new(asn_counts),
            overall_fraction: if total == 0 {
                0.0
            } else {
                with as f64 / total as f64
            },
        }
    }

    /// Fig 4(a)'s per-platform ECDF over collectors: for each platform, the
    /// sorted fractions of updates with communities.
    pub fn fig4a_series(&self) -> BTreeMap<String, Vec<f64>> {
        let mut out: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for ((platform, _), frac) in &self.per_collector_fraction {
            out.entry(platform.clone()).or_default().push(*frac);
        }
        for v in out.values_mut() {
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        }
        out
    }

    /// Fraction of announcements with strictly more than `n` communities
    /// (the paper: 51 % have more than two).
    pub fn fraction_more_than(&self, n: u64) -> f64 {
        1.0 - self.communities_per_update.fraction_at(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::UpdateObservation;
    use bgpworms_types::{Asn, Community};

    fn obs(collector: &str, n_comms: u16, owners: &[u16]) -> UpdateObservation {
        let mut communities = Vec::new();
        for i in 0..n_comms {
            let owner = owners[(i as usize) % owners.len().max(1)];
            communities.push(Community::new(owner, i));
        }
        UpdateObservation {
            platform: "RIS".into(),
            collector: collector.into(),
            time: 0,
            peer: Asn::new(3),
            prefix: "10.0.0.0/16".parse().unwrap(),
            path: vec![Asn::new(3), Asn::new(1)],
            raw_hop_count: 2,
            prepends: Vec::new(),
            large_communities: Vec::new(),
            communities,
            is_withdrawal: false,
        }
    }

    #[test]
    fn fractions_and_ecdfs() {
        let set = ObservationSet {
            observations: vec![
                obs("rrc00", 0, &[]),
                obs("rrc00", 3, &[1, 2]),
                obs("rrc01", 1, &[1]),
                obs("rrc01", 5, &[1, 2, 3]),
            ],
            messages: vec![],
        };
        let usage = UsageAnalysis::compute(&set);
        assert_eq!(usage.overall_fraction, 0.75);
        assert_eq!(
            usage.per_collector_fraction[&("RIS".into(), "rrc00".into())],
            0.5
        );
        assert_eq!(
            usage.per_collector_fraction[&("RIS".into(), "rrc01".into())],
            1.0
        );
        // communities per update: [0,3,1,5] → fraction ≤ 1 is 0.5
        assert_eq!(usage.communities_per_update.fraction_at(1.0), 0.5);
        // more-than-2 fraction: two of four updates (3 and 5 communities)
        assert_eq!(usage.fraction_more_than(2), 0.5);
        // associated ASNs: [0,2,1,3]
        assert_eq!(usage.asns_per_update.fraction_at(1.0), 0.5);
    }

    #[test]
    fn fig4a_series_sorted_per_platform() {
        let mut set = ObservationSet {
            observations: vec![obs("rrc00", 1, &[1]), obs("rrc01", 0, &[])],
            messages: vec![],
        };
        set.observations.push(UpdateObservation {
            platform: "PCH".into(),
            ..obs("pch001", 1, &[1])
        });
        let usage = UsageAnalysis::compute(&set);
        let series = usage.fig4a_series();
        assert_eq!(series["RIS"], vec![0.0, 1.0]);
        assert_eq!(series["PCH"], vec![1.0]);
    }

    #[test]
    fn withdrawals_excluded() {
        let mut o = obs("rrc00", 0, &[]);
        o.is_withdrawal = true;
        let set = ObservationSet {
            observations: vec![o, obs("rrc00", 1, &[1])],
            messages: vec![],
        };
        let usage = UsageAnalysis::compute(&set);
        assert_eq!(usage.overall_fraction, 1.0, "only the announcement counts");
    }
}
