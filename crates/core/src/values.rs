//! Popular community values — Fig 5(c): the top-10 low-16 values among
//! on-path and off-path communities, with their (small) share of all
//! observed community instances.

use crate::observation::ObservationSet;
use crate::stats::Histogram;
use crate::table::{pct, text_table};

/// A ranked value list: `(value, count, share)` rows.
pub type TopList = Vec<(u16, u64, f64)>;

/// Top community values split by on-/off-path attribution.
#[derive(Debug, Clone)]
pub struct TopValues {
    /// Histogram of low-16 values for on-path community instances.
    pub on_path: Histogram<u16>,
    /// Histogram for off-path instances (public owners only, following the
    /// paper's exclusion of private ASNs).
    pub off_path: Histogram<u16>,
}

impl TopValues {
    /// Computes value histograms over deduplicated
    /// (community, prefix, peer) instances.
    pub fn compute(set: &ObservationSet) -> Self {
        let mut on_path = Histogram::new();
        let mut off_path = Histogram::new();
        let mut seen = std::collections::BTreeSet::new();
        for obs in set.announcements() {
            for &c in &obs.communities {
                if !seen.insert((c, obs.prefix, obs.peer)) {
                    continue;
                }
                if obs.position_of(c.owner()).is_some() {
                    on_path.add(c.value_part());
                } else if c.owner().is_public() {
                    off_path.add(c.value_part());
                }
            }
        }
        TopValues { on_path, off_path }
    }

    /// The top-`n` values for each class: `(value, count, share)`.
    pub fn top(&self, n: usize) -> (TopList, TopList) {
        (self.off_path.top(n), self.on_path.top(n))
    }

    /// Renders Fig 5(c) as a two-block table (off-path first, as in the
    /// paper's bar order).
    pub fn render(&self, n: usize) -> String {
        let (off, on) = self.top(n);
        let mut rows = Vec::new();
        let max = off.len().max(on.len());
        for i in 0..max {
            let (ov, oc, os) = off
                .get(i)
                .map(|&(v, c, s)| (v.to_string(), c.to_string(), pct(s)))
                .unwrap_or_default();
            let (nv, nc, ns) = on
                .get(i)
                .map(|&(v, c, s)| (v.to_string(), c.to_string(), pct(s)))
                .unwrap_or_default();
            rows.push(vec![ov, oc, os, nv, nc, ns]);
        }
        text_table(
            &[
                "off-path value",
                "count",
                "share",
                "on-path value",
                "count",
                "share",
            ],
            &rows,
        )
    }

    /// Whether the conventional blackhole value 666 ranks in the off-path
    /// top-`n` but not the on-path top-`n` — the asymmetry the paper
    /// highlights (acted-upon communities disappear from on-path view).
    pub fn blackhole_asymmetry(&self, n: usize) -> bool {
        let (off, on) = self.top(n);
        let in_off = off.iter().any(|&(v, _, _)| v == 666);
        let in_on = on.iter().any(|&(v, _, _)| v == 666);
        in_off && !in_on
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::UpdateObservation;
    use bgpworms_types::{Asn, Community};

    fn obs(peer: u32, path: &[u32], comms: &[(u16, u16)], prefix: &str) -> UpdateObservation {
        UpdateObservation {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            time: 0,
            peer: Asn::new(peer),
            prefix: prefix.parse().unwrap(),
            path: path.iter().map(|&n| Asn::new(n)).collect(),
            raw_hop_count: path.len(),
            prepends: Vec::new(),
            large_communities: Vec::new(),
            communities: comms.iter().map(|&(a, v)| Community::new(a, v)).collect(),
            is_withdrawal: false,
        }
    }

    #[test]
    fn splits_on_and_off_path() {
        let set = ObservationSet {
            observations: vec![
                obs(5, &[5, 3, 1], &[(3, 100), (77, 666)], "10.0.0.0/16"),
                obs(5, &[5, 3, 1], &[(3, 100)], "20.0.0.0/16"),
                // private off-path owner excluded entirely:
                obs(5, &[5, 1], &[(64_600, 666)], "30.0.0.0/16"),
            ],
            messages: vec![],
        };
        let tv = TopValues::compute(&set);
        assert_eq!(tv.on_path.count(&100), 2);
        assert_eq!(tv.off_path.count(&666), 1);
        assert_eq!(tv.off_path.total(), 1, "private owner dropped");
        assert!(tv.blackhole_asymmetry(10));
    }

    #[test]
    fn dedup_prevents_double_counting() {
        let o = obs(5, &[5, 3, 1], &[(3, 100)], "10.0.0.0/16");
        let set = ObservationSet {
            observations: vec![o.clone(), o],
            messages: vec![],
        };
        let tv = TopValues::compute(&set);
        assert_eq!(tv.on_path.count(&100), 1);
    }

    #[test]
    fn render_shows_both_columns() {
        let set = ObservationSet {
            observations: vec![obs(5, &[5, 3, 1], &[(3, 100), (99, 500)], "10.0.0.0/16")],
            messages: vec![],
        };
        let tv = TopValues::compute(&set);
        let text = tv.render(5);
        assert!(text.contains("off-path value"));
        assert!(text.contains("100"));
        assert!(text.contains("500"));
    }
}
