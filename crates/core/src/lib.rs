//! The paper's primary contribution: the BGP community measurement
//! pipeline of §4.
//!
//! (`ARCHITECTURE.md` at the repository root shows where this analysis
//! layer sits in the workspace.)
//!
//! Input is MRT — the same bytes RIPE RIS / RouteViews / Isolario / PCH
//! publish and that `bgpworms-routesim` collectors emit. The pipeline never
//! sees simulator internals; it parses archives into
//! [`UpdateObservation`]s and derives every statistic of the paper's
//! measurement section:
//!
//! | Analysis | Paper artefact | Module |
//! |---|---|---|
//! | dataset overview | Table 1 | [`dataset`] |
//! | ASes with observed communities | Table 2 | [`propagation`] |
//! | communities use over time | Fig 3 | [`timeseries`] |
//! | updates w/ communities per collector | Fig 4a | [`usage`] |
//! | communities / associated ASes per update | Fig 4b | [`usage`] |
//! | propagation distance (all vs. blackhole) | Fig 5a | [`propagation`] |
//! | relative distance by path length | Fig 5b | [`propagation`] |
//! | top-10 values on-/off-path | Fig 5c | [`values`] |
//! | transit ASes forwarding communities | §4.3 ("2.2K of 15.5K") | [`propagation`] |
//! | filter vs. forward indications per edge | Fig 6 | [`filtering`] |
//! | RFC 8092 large-community channel | footnote 1 (future work) | [`large`] |
//!
//! Shared statistical utilities (ECDFs, histograms, text tables) live in
//! [`stats`] and [`table`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod filtering;
pub mod large;
pub mod observation;
pub mod propagation;
pub mod stats;
pub mod table;
pub mod timeseries;
pub mod usage;
pub mod values;

pub use dataset::{DatasetOverview, PlatformStats};
pub use filtering::{
    ClassIndications, EdgeIndications, FilteringAnalysis, RelClass, RelationshipCorrelation,
};
pub use large::LargeCommunityAnalysis;
pub use observation::{ArchiveInput, BlackholeDetector, ObservationSet, UpdateObservation};
pub use propagation::{PropagationAnalysis, Table2Row};
pub use stats::{Ecdf, Histogram};
pub use timeseries::SnapshotStats;
pub use usage::UsageAnalysis;
pub use values::TopValues;
