//! Small statistics toolkit: ECDFs, histograms, quantiles — the plumbing
//! under every figure.

use std::collections::BTreeMap;

/// An empirical CDF over f64 samples.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from samples (NaNs are dropped).
    pub fn new<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by nearest-rank.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[rank.min(self.sorted.len() - 1)])
    }

    /// Step points `(x, F(x))` at each distinct sample value.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = f,
                _ => out.push((x, f)),
            }
        }
        out
    }

    /// Renders a fixed-grid series for terminal plotting/export: fraction
    /// at each of the given x positions.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_at(x))).collect()
    }
}

/// A counting histogram over ordered keys.
#[derive(Debug, Clone, Default)]
pub struct Histogram<K: Ord> {
    counts: BTreeMap<K, u64>,
    total: u64,
}

impl<K: Ord + Clone> Histogram<K> {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: BTreeMap::new(),
            total: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, key: K) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Adds `n` samples of `key`.
    pub fn add_n(&mut self, key: K, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Count for `key`.
    pub fn count(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct keys.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Top-`n` keys by count (ties broken by key order, descending count
    /// first) with their share of the total.
    pub fn top(&self, n: usize) -> Vec<(K, u64, f64)> {
        let mut items: Vec<(K, u64)> = self.counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        items
            .into_iter()
            .take(n)
            .map(|(k, v)| {
                let share = if self.total == 0 {
                    0.0
                } else {
                    v as f64 / self.total as f64
                };
                (k, v, share)
            })
            .collect()
    }

    /// Iterates `(key, count)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }
}

/// log10(x + 1) — the transform Fig 6(b) uses to include zero counts on
/// logarithmic axes.
pub fn log1p10(x: u64) -> f64 {
    ((x + 1) as f64).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_fraction_and_quantiles() {
        let e = Ecdf::new([1.0, 2.0, 2.0, 3.0, 10.0]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.fraction_at(0.5), 0.0);
        assert_eq!(e.fraction_at(1.0), 0.2);
        assert_eq!(e.fraction_at(2.0), 0.6);
        assert_eq!(e.fraction_at(100.0), 1.0);
        assert_eq!(e.quantile(0.5), Some(2.0));
        assert_eq!(e.quantile(1.0), Some(10.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(Ecdf::new([]).quantile(0.5), None);
    }

    #[test]
    fn ecdf_points_are_monotonic_and_deduped() {
        let e = Ecdf::new([3.0, 1.0, 2.0, 2.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 3, "distinct xs only");
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_series_on_grid() {
        let e = Ecdf::new([1.0, 2.0, 3.0, 4.0]);
        let s = e.series(&[0.0, 2.0, 4.0]);
        assert_eq!(s, vec![(0.0, 0.0), (2.0, 0.5), (4.0, 1.0)]);
    }

    #[test]
    fn ecdf_ignores_nan() {
        let e = Ecdf::new([1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn histogram_top_shares() {
        let mut h = Histogram::new();
        for _ in 0..6 {
            h.add("a");
        }
        for _ in 0..3 {
            h.add("b");
        }
        h.add("c");
        let top = h.top(2);
        assert_eq!(top[0], ("a", 6, 0.6));
        assert_eq!(top[1], ("b", 3, 0.3));
        assert_eq!(h.total(), 10);
        assert_eq!(h.count(&"c"), 1);
        assert_eq!(h.count(&"z"), 0);
    }

    #[test]
    fn histogram_tie_break_is_deterministic() {
        let mut h = Histogram::new();
        h.add_n("b", 5);
        h.add_n("a", 5);
        let top = h.top(2);
        assert_eq!(top[0].0, "a", "ties break by key order");
    }

    #[test]
    fn log_transform_includes_zero() {
        assert_eq!(log1p10(0), 0.0);
        assert!((log1p10(9) - 1.0).abs() < 1e-9);
        assert!((log1p10(99) - 2.0).abs() < 1e-9);
    }
}
