//! Parsing MRT archives into the analysis-ready observation model.

use bgpworms_mrt::{MrtError, UpdateStream};
use bgpworms_types::{Asn, Community, LargeCommunity, Prefix};
use std::collections::BTreeSet;

/// One announced prefix as observed at a collector session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateObservation {
    /// Platform the collector belongs to (RIS / RV / IS / PCH).
    pub platform: String,
    /// Collector name.
    pub collector: String,
    /// Observation time (Unix seconds).
    pub time: u32,
    /// The collector's peer session (also `path[0]` for announcements).
    pub peer: Asn,
    /// The prefix.
    pub prefix: Prefix,
    /// De-prepended AS path, collector-first (`path[0]` = peer,
    /// `path.last()` = origin). Empty for withdrawals.
    pub path: Vec<Asn>,
    /// Hop count of the path *before* de-prepending (for Fig 5b's length
    /// buckets the de-prepended length is used; this preserves the raw).
    pub raw_hop_count: usize,
    /// Prepend evidence from the raw path: ASes that appeared in
    /// consecutive runs of length > 1, with the run length. Steering
    /// inference needs to know *which* AS was prepended (§9 future agenda).
    pub prepends: Vec<(Asn, usize)>,
    /// Attached communities.
    pub communities: Vec<Community>,
    /// Attached RFC 8092 large communities (the paper's footnote-1 future
    /// work; analysed in [`crate::large`]).
    pub large_communities: Vec<LargeCommunity>,
    /// True for withdrawals.
    pub is_withdrawal: bool,
}

impl UpdateObservation {
    /// Origin AS, if any.
    pub fn origin(&self) -> Option<Asn> {
        self.path.last().copied()
    }

    /// True if at least one community is attached.
    pub fn has_communities(&self) -> bool {
        !self.communities.is_empty()
    }

    /// Index of `asn` in the de-prepended path (0 = peer).
    pub fn position_of(&self, asn: Asn) -> Option<usize> {
        self.path.iter().position(|&a| a == asn)
    }

    /// Distinct community-owner ASNs on this update.
    pub fn community_owners(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.communities.iter().map(|c| c.owner()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// An MRT archive with its provenance labels.
#[derive(Debug, Clone)]
pub struct ArchiveInput {
    /// Platform (RIS / RV / IS / PCH).
    pub platform: String,
    /// Collector name.
    pub collector: String,
    /// Raw BGP4MP update archive.
    pub mrt: Vec<u8>,
}

/// The full observation set plus per-archive accounting.
#[derive(Debug, Clone, Default)]
pub struct ObservationSet {
    /// All parsed observations (announcements *and* withdrawals).
    pub observations: Vec<UpdateObservation>,
    /// Raw MRT message count per (platform, collector).
    pub messages: Vec<(String, String, u64)>,
}

impl ObservationSet {
    /// Parses a batch of archives. Multi-NLRI updates explode into one
    /// observation per prefix (sharing the update's attributes).
    pub fn from_archives(archives: &[ArchiveInput]) -> Result<Self, MrtError> {
        let mut set = ObservationSet::default();
        for archive in archives {
            let mut count = 0u64;
            for msg in UpdateStream::new(archive.mrt.as_slice()) {
                let msg = msg?;
                count += 1;
                let raw_hop_count = msg.update.attrs.as_path.hop_count();
                let prepends = msg.update.attrs.as_path.prepend_runs();
                let path: Vec<Asn> = msg.update.attrs.as_path.deprepended().to_vec();
                for prefix in &msg.update.announced {
                    set.observations.push(UpdateObservation {
                        platform: archive.platform.clone(),
                        collector: archive.collector.clone(),
                        time: msg.header.timestamp,
                        peer: msg.peer_as,
                        prefix: *prefix,
                        path: path.clone(),
                        raw_hop_count,
                        prepends: prepends.clone(),
                        communities: msg.update.attrs.communities.clone(),
                        large_communities: msg.update.attrs.large_communities.clone(),
                        is_withdrawal: false,
                    });
                }
                for prefix in &msg.update.withdrawn {
                    set.observations.push(UpdateObservation {
                        platform: archive.platform.clone(),
                        collector: archive.collector.clone(),
                        time: msg.header.timestamp,
                        peer: msg.peer_as,
                        prefix: *prefix,
                        path: Vec::new(),
                        raw_hop_count: 0,
                        prepends: Vec::new(),
                        communities: Vec::new(),
                        large_communities: Vec::new(),
                        is_withdrawal: true,
                    });
                }
            }
            set.messages
                .push((archive.platform.clone(), archive.collector.clone(), count));
        }
        Ok(set)
    }

    /// Announcement observations only.
    pub fn announcements(&self) -> impl Iterator<Item = &UpdateObservation> {
        self.observations.iter().filter(|o| !o.is_withdrawal)
    }

    /// All platforms present, sorted.
    pub fn platforms(&self) -> Vec<String> {
        let mut v: Vec<String> = self.messages.iter().map(|(p, _, _)| p.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Observations restricted to one platform.
    pub fn platform_slice(&self, platform: &str) -> ObservationSet {
        ObservationSet {
            observations: self
                .observations
                .iter()
                .filter(|o| o.platform == platform)
                .cloned()
                .collect(),
            messages: self
                .messages
                .iter()
                .filter(|(p, _, _)| p == platform)
                .cloned()
                .collect(),
        }
    }

    /// The direct collector-peer ASes.
    pub fn collector_peers(&self) -> BTreeSet<Asn> {
        self.observations.iter().map(|o| o.peer).collect()
    }
}

/// Identifies blackhole communities: the RFC 7999 well-known value, the
/// `ASN:666` convention, and an optional list of verified/inferred
/// communities (the paper uses the 307 verified ones from Giotsas et al.).
#[derive(Debug, Clone, Default)]
pub struct BlackholeDetector {
    /// Externally supplied known blackhole communities.
    pub known: BTreeSet<Community>,
}

impl BlackholeDetector {
    /// Detector with only the conventional rules.
    pub fn conventional() -> Self {
        BlackholeDetector::default()
    }

    /// Detector with an extra verified list.
    pub fn with_known<I: IntoIterator<Item = Community>>(known: I) -> Self {
        BlackholeDetector {
            known: known.into_iter().collect(),
        }
    }

    /// True if `c` is a blackhole community under this detector.
    pub fn is_blackhole(&self, c: Community) -> bool {
        c == Community::BLACKHOLE || c.has_blackhole_value() || self.known.contains(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpworms_mrt::MrtWriter;
    use bgpworms_types::{AsPath, PathAttributes, RouteUpdate};

    fn archive_with(updates: &[RouteUpdate]) -> ArchiveInput {
        let mut w = MrtWriter::new(Vec::new());
        for (i, u) in updates.iter().enumerate() {
            bgpworms_mrt::write_update_into(
                &mut w,
                100 + i as u32,
                u.attrs.as_path.head().unwrap_or(Asn::new(65_000)),
                Asn::new(64_496),
                "10.0.0.2".parse().unwrap(),
                u,
            )
            .unwrap();
        }
        ArchiveInput {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            mrt: w.into_inner(),
        }
    }

    fn update(path: &[u32], comms: &[(u16, u16)], prefixes: &[&str]) -> RouteUpdate {
        let mut attrs = PathAttributes {
            as_path: AsPath::from_asns(path.iter().map(|&n| Asn::new(n))),
            next_hop: Some("10.0.0.1".parse().unwrap()),
            ..PathAttributes::default()
        };
        attrs.communities = comms.iter().map(|&(a, v)| Community::new(a, v)).collect();
        RouteUpdate {
            withdrawn: vec![],
            attrs,
            announced: prefixes.iter().map(|p| p.parse().unwrap()).collect(),
        }
    }

    #[test]
    fn parses_multi_nlri_and_withdrawals() {
        let mut w = update(&[3, 2, 1], &[(2, 100)], &["10.0.0.0/16", "20.0.0.0/16"]);
        w.withdrawn.push("30.0.0.0/16".parse().unwrap());
        let set = ObservationSet::from_archives(&[archive_with(&[w])]).unwrap();
        assert_eq!(set.observations.len(), 3);
        assert_eq!(set.announcements().count(), 2);
        let wd: Vec<_> = set
            .observations
            .iter()
            .filter(|o| o.is_withdrawal)
            .collect();
        assert_eq!(wd.len(), 1);
        assert_eq!(set.messages, vec![("RIS".into(), "rrc00".into(), 1)]);
    }

    #[test]
    fn deprepends_paths_but_keeps_raw_count() {
        let u = update(&[3, 3, 3, 2, 1], &[], &["10.0.0.0/16"]);
        let set = ObservationSet::from_archives(&[archive_with(&[u])]).unwrap();
        let obs = &set.observations[0];
        assert_eq!(obs.path, vec![Asn::new(3), Asn::new(2), Asn::new(1)]);
        assert_eq!(obs.raw_hop_count, 5);
        assert_eq!(obs.origin(), Some(Asn::new(1)));
        assert_eq!(obs.position_of(Asn::new(2)), Some(1));
        assert_eq!(obs.peer, Asn::new(3));
    }

    #[test]
    fn community_owner_extraction() {
        let u = update(&[3, 2, 1], &[(2, 100), (2, 200), (7, 1)], &["10.0.0.0/16"]);
        let set = ObservationSet::from_archives(&[archive_with(&[u])]).unwrap();
        let obs = &set.observations[0];
        assert!(obs.has_communities());
        assert_eq!(obs.community_owners(), vec![Asn::new(2), Asn::new(7)]);
    }

    #[test]
    fn platform_slicing() {
        let a = archive_with(&[update(&[3, 2, 1], &[], &["10.0.0.0/16"])]);
        let mut b = archive_with(&[update(&[4, 1], &[], &["20.0.0.0/16"])]);
        b.platform = "PCH".into();
        b.collector = "pch001".into();
        let set = ObservationSet::from_archives(&[a, b]).unwrap();
        assert_eq!(set.platforms(), vec!["PCH".to_string(), "RIS".to_string()]);
        let ris = set.platform_slice("RIS");
        assert_eq!(ris.observations.len(), 1);
        assert_eq!(ris.collector_peers().len(), 1);
    }

    #[test]
    fn blackhole_detector_rules() {
        let det = BlackholeDetector::conventional();
        assert!(det.is_blackhole(Community::BLACKHOLE));
        assert!(det.is_blackhole(Community::new(3320, 666)));
        assert!(!det.is_blackhole(Community::new(3320, 667)));
        let det = BlackholeDetector::with_known([Community::new(1, 9999)]);
        assert!(det.is_blackhole(Community::new(1, 9999)));
        assert!(!det.is_blackhole(Community::new(1, 9998)));
    }
}
