//! Community filtering inference — §4.4 / Fig 6: per directed AS edge,
//! indication counts that communities are *forwarded* vs. *filtered*.
//!
//! The heuristic follows the paper's Figure 6(a) construction. For each
//! prefix, consider all announcements together. A community `c = A:x` on a
//! path `… Y X … A …` (collector-first) shows that every AS between the
//! (conservatively assumed) tagger `A` and the peer has seen and forwarded
//! `c`: each consecutive pair contributes a *forwarded* indication to the
//! edge it crossed. If another announcement for the same prefix passes
//! through an AS `X` known to have had `c`, toward a different next hop
//! `Z`, and does *not* carry `c`, the edge `(X, Z)` receives a *filtered*
//! indication.

use crate::observation::ObservationSet;
use crate::stats::log1p10;
use bgpworms_types::{Asn, Community, Prefix};
use std::collections::{BTreeMap, BTreeSet};

/// Indication counters for one directed AS edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeIndications {
    /// Evidence the edge forwards communities.
    pub forwarded: u64,
    /// Evidence the edge filters communities.
    pub filtered: u64,
}

/// The filtering analysis over all prefixes.
#[derive(Debug, Clone, Default)]
pub struct FilteringAnalysis {
    /// Directed edge → indication counts.
    pub edges: BTreeMap<(Asn, Asn), EdgeIndications>,
    /// Every directed AS edge observed on any announcement path — the
    /// paper's "almost 400,000 AS edges" denominator.
    pub all_edges: BTreeSet<(Asn, Asn)>,
}

impl FilteringAnalysis {
    /// Runs the indication-count heuristic.
    pub fn compute(set: &ObservationSet) -> Self {
        // Group announcement observations per prefix.
        let mut by_prefix: BTreeMap<Prefix, Vec<usize>> = BTreeMap::new();
        let all: Vec<_> = set.announcements().collect();
        let mut all_edges: BTreeSet<(Asn, Asn)> = BTreeSet::new();
        for (i, obs) in all.iter().enumerate() {
            by_prefix.entry(obs.prefix).or_default().push(i);
            for w in obs.path.windows(2) {
                // Announcement direction: w[1] exported to w[0].
                all_edges.insert((w[1], w[0]));
            }
        }

        let mut edges: BTreeMap<(Asn, Asn), EdgeIndications> = BTreeMap::new();

        for indices in by_prefix.values() {
            // Which ASes are known to have held community c (between tagger
            // and peer on some carrying path)?
            let mut holders: BTreeMap<Community, BTreeSet<Asn>> = BTreeMap::new();
            for &i in indices {
                let obs = all[i];
                for &c in &obs.communities {
                    let Some(tagger_idx) = obs.position_of(c.owner()) else {
                        continue;
                    };
                    let entry = holders.entry(c).or_default();
                    for &asn in &obs.path[..=tagger_idx] {
                        entry.insert(asn);
                    }
                }
            }

            // Forward / filter indications per (community, announcement).
            for (&c, holder_set) in &holders {
                for &i in indices {
                    let obs = all[i];
                    let carries = obs.communities.contains(&c);
                    let tagger_pos = obs.position_of(c.owner());
                    if !carries && tagger_pos.is_none() {
                        // The tagger is not even on this path; the
                        // community plausibly never travelled here, so its
                        // absence is not evidence of filtering.
                        continue;
                    }
                    // Walk consecutive pairs (X at j+1 exports to Z at j).
                    for j in 0..obs.path.len().saturating_sub(1) {
                        let z = obs.path[j];
                        let x = obs.path[j + 1];
                        if x == c.owner() {
                            // The tagger adding its own community is not a
                            // forwarding decision about foreign communities.
                            continue;
                        }
                        if !holder_set.contains(&x) {
                            continue;
                        }
                        // Only edges between the tagger and the monitor are
                        // informative on this path.
                        if tagger_pos.map(|t| j < t) != Some(true) {
                            continue;
                        }
                        let e = edges.entry((x, z)).or_default();
                        if carries {
                            e.forwarded += 1;
                        } else {
                            e.filtered += 1;
                        }
                    }
                }
            }
        }

        FilteringAnalysis { edges, all_edges }
    }

    /// Fraction of *all observed AS edges* with ≥1 forwarding indication
    /// and with ≥1 filtering indication, restricted to edges carrying at
    /// least `min_total` indications (the paper reports 4 % / 10 % overall
    /// and 6 % / 15 % for edges with ≥ 100 paths).
    pub fn fractions(&self, min_total: u64) -> (f64, f64) {
        if self.all_edges.is_empty() {
            return (0.0, 0.0);
        }
        let denom = self.all_edges.len() as f64;
        let fwd = self
            .edges
            .values()
            .filter(|e| e.forwarded + e.filtered >= min_total && e.forwarded > 0)
            .count();
        let fil = self
            .edges
            .values()
            .filter(|e| e.forwarded + e.filtered >= min_total && e.filtered > 0)
            .count();
        (fwd as f64 / denom, fil as f64 / denom)
    }

    /// Fig 6(b)'s hex-bin matrix: log10(count+1) buckets of
    /// (filtered, forwarded) per edge → number of edges in each bucket.
    pub fn hexbin(&self, bins_per_decade: usize) -> BTreeMap<(usize, usize), usize> {
        let mut out: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let scale = bins_per_decade as f64;
        for e in self.edges.values() {
            if e.forwarded == 0 && e.filtered == 0 {
                continue;
            }
            let x = (log1p10(e.filtered) * scale).floor() as usize;
            let y = (log1p10(e.forwarded) * scale).floor() as usize;
            *out.entry((x, y)).or_insert(0) += 1;
        }
        out
    }

    /// Indication counters for one directed edge, if any were recorded.
    pub fn edge(&self, from: Asn, to: Asn) -> Option<&EdgeIndications> {
        self.edges.get(&(from, to))
    }

    /// Edges that apparently strip everything (filter indications only).
    pub fn strict_filterers(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        self.edges
            .iter()
            .filter(|(_, e)| e.filtered > 0 && e.forwarded == 0)
            .map(|(&k, _)| k)
    }

    /// Edges that apparently forward everything (forward indications only).
    pub fn strict_forwarders(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        self.edges
            .iter()
            .filter(|(_, e)| e.forwarded > 0 && e.filtered == 0)
            .map(|(&k, _)| k)
    }

    /// Edges with both kinds of indication ("mixed picture", §4.4).
    pub fn mixed(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        self.edges
            .iter()
            .filter(|(_, e)| e.forwarded > 0 && e.filtered > 0)
            .map(|(&k, _)| k)
    }
}

/// Business relationship of a directed announcement edge `(exporter,
/// importer)`, from the exporter's point of view — the classification the
/// paper takes from the CAIDA dataset (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RelClass {
    /// Exporter sends to its customer (provider → customer direction).
    ToCustomer,
    /// Exporter sends to its provider (customer → provider direction).
    ToProvider,
    /// Settlement-free peering (includes route-server adjacency).
    Peer,
}

impl RelClass {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            RelClass::ToCustomer => "to-customer",
            RelClass::ToProvider => "to-provider",
            RelClass::Peer => "peer",
        }
    }
}

/// Indication totals for one relationship class.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassIndications {
    /// Edges of this class with any indication.
    pub edges: usize,
    /// Edges with ≥ 1 forwarding indication.
    pub forwarding: usize,
    /// Edges with ≥ 1 filtering indication.
    pub filtering: usize,
    /// Edges with both (the "mixed picture").
    pub mixed: usize,
}

impl ClassIndications {
    /// Fraction of this class's edges with forwarding indications.
    pub fn forwarding_fraction(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.forwarding as f64 / self.edges as f64
        }
    }

    /// Fraction with filtering indications.
    pub fn filtering_fraction(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.filtering as f64 / self.edges as f64
        }
    }

    /// Fraction with both.
    pub fn mixed_fraction(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.mixed as f64 / self.edges as f64
        }
    }
}

/// §4.4's future work: correlate the per-edge filter/forward indications
/// with the business relationship of the edge. The paper found CAIDA's
/// three-way classification "too coarse grained … for a conclusive
/// picture"; with ground-truth relationships the simulator can check what
/// signal exists at all.
#[derive(Debug, Clone, Default)]
pub struct RelationshipCorrelation {
    /// Totals per relationship class.
    pub per_class: BTreeMap<RelClass, ClassIndications>,
    /// Edges whose relationship the lookup could not classify.
    pub unclassified: usize,
}

impl RelationshipCorrelation {
    /// Correlates `analysis` with relationships provided by `classify`
    /// (typically `Topology::role_of` or a parsed CAIDA serial-1 file).
    /// The closure receives the announcement-direction edge `(exporter,
    /// importer)`.
    pub fn compute<F>(analysis: &FilteringAnalysis, classify: F) -> Self
    where
        F: Fn(Asn, Asn) -> Option<RelClass>,
    {
        let mut out = RelationshipCorrelation::default();
        for (&(exporter, importer), e) in &analysis.edges {
            if e.forwarded == 0 && e.filtered == 0 {
                continue;
            }
            let Some(class) = classify(exporter, importer) else {
                out.unclassified += 1;
                continue;
            };
            let c = out.per_class.entry(class).or_default();
            c.edges += 1;
            if e.forwarded > 0 {
                c.forwarding += 1;
            }
            if e.filtered > 0 {
                c.filtering += 1;
            }
            if e.forwarded > 0 && e.filtered > 0 {
                c.mixed += 1;
            }
        }
        out
    }

    /// Renders the correlation table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "relationship   edges  forwarding  filtering  mixed");
        let _ = writeln!(out, "-----------------------------------------------------");
        for (class, c) in &self.per_class {
            let _ = writeln!(
                out,
                "{:<13} {:>6}  {:>9.1}%  {:>8.1}%  {:>4.1}%",
                class.label(),
                c.edges,
                c.forwarding_fraction() * 100.0,
                c.filtering_fraction() * 100.0,
                c.mixed_fraction() * 100.0
            );
        }
        let _ = writeln!(out, "unclassified edges: {}", self.unclassified);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::UpdateObservation;

    fn obs(peer: u32, path: &[u32], comms: &[(u16, u16)], prefix: &str) -> UpdateObservation {
        UpdateObservation {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            time: 0,
            peer: Asn::new(peer),
            prefix: prefix.parse().unwrap(),
            path: path.iter().map(|&n| Asn::new(n)).collect(),
            raw_hop_count: path.len(),
            prepends: Vec::new(),
            large_communities: Vec::new(),
            communities: comms.iter().map(|&(a, v)| Community::new(a, v)).collect(),
            is_withdrawal: false,
        }
    }

    /// The paper's Fig 6(a) example: prefix p originated at AS1; A1 via
    /// AS4 carries AS2:x, A2 via AS5 carries nothing.
    fn paper_example() -> ObservationSet {
        ObservationSet {
            observations: vec![
                obs(4, &[4, 3, 2, 1], &[(2, 9)], "10.0.0.0/16"),
                obs(5, &[5, 3, 2, 1], &[], "10.0.0.0/16"),
            ],
            messages: vec![],
        }
    }

    #[test]
    fn forward_and_filter_indications_match_paper_example() {
        let analysis = FilteringAnalysis::compute(&paper_example());
        // A1: community AS2:x, tagger at index 2. AS3 forwarded it to AS4:
        // forward indication on (AS3, AS4).
        let fwd = analysis.edges[&(Asn::new(3), Asn::new(4))];
        assert_eq!(fwd.forwarded, 1);
        assert_eq!(fwd.filtered, 0);
        // A2: same prefix through AS3 toward AS5 without the community:
        // filter indication on (AS3, AS5).
        let fil = analysis.edges[&(Asn::new(3), Asn::new(5))];
        assert_eq!(fil.filtered, 1);
        assert_eq!(fil.forwarded, 0);
        // The tagger's own edge (AS2→AS3) is not a foreign-forwarding
        // decision.
        assert!(!analysis.edges.contains_key(&(Asn::new(2), Asn::new(3))));
    }

    #[test]
    fn classification_helpers() {
        let analysis = FilteringAnalysis::compute(&paper_example());
        let forwarders: Vec<_> = analysis.strict_forwarders().collect();
        assert_eq!(forwarders, vec![(Asn::new(3), Asn::new(4))]);
        let filterers: Vec<_> = analysis.strict_filterers().collect();
        assert_eq!(filterers, vec![(Asn::new(3), Asn::new(5))]);
        assert_eq!(analysis.mixed().count(), 0);
    }

    #[test]
    fn mixed_edges_detected() {
        // Same edge forwards one community and filters another.
        let set = ObservationSet {
            observations: vec![
                obs(4, &[4, 3, 2, 1], &[(2, 9)], "10.0.0.0/16"),
                obs(4, &[4, 3, 2, 1], &[(2, 8)], "20.0.0.0/16"),
                obs(5, &[5, 3, 2, 1], &[(2, 8)], "20.0.0.0/16"),
                obs(5, &[5, 3, 2, 1], &[], "10.0.0.0/16"),
            ],
            messages: vec![],
        };
        let analysis = FilteringAnalysis::compute(&set);
        let e35 = analysis.edges[&(Asn::new(3), Asn::new(5))];
        assert!(e35.forwarded > 0 && e35.filtered > 0);
        assert_eq!(analysis.mixed().count(), 1);
    }

    #[test]
    fn fractions_use_all_edges_denominator() {
        let analysis = FilteringAnalysis::compute(&paper_example());
        // Path edges: (3,4),(2,3),(1,2),(3,5) → 4 observed edges, one with
        // a forward indication and one with a filter indication.
        assert_eq!(analysis.all_edges.len(), 4);
        let (fwd, fil) = analysis.fractions(0);
        assert_eq!(fwd, 0.25);
        assert_eq!(fil, 0.25);
        let (fwd, fil) = analysis.fractions(100);
        assert_eq!((fwd, fil), (0.0, 0.0), "no edge has 100 indications");
    }

    #[test]
    fn relationship_correlation_classifies_edges() {
        // (3,4) has a forward indication, (3,5) a filter indication.
        let analysis = FilteringAnalysis::compute(&paper_example());
        let corr = RelationshipCorrelation::compute(&analysis, |from, to| {
            // Pretend 3→4 is a customer export and 3→5 a peer export.
            match (from.get(), to.get()) {
                (3, 4) => Some(RelClass::ToCustomer),
                (3, 5) => Some(RelClass::Peer),
                _ => None,
            }
        });
        let cust = corr.per_class[&RelClass::ToCustomer];
        assert_eq!((cust.edges, cust.forwarding, cust.filtering), (1, 1, 0));
        let peer = corr.per_class[&RelClass::Peer];
        assert_eq!((peer.edges, peer.forwarding, peer.filtering), (1, 0, 1));
        assert_eq!(corr.unclassified, 0);
        let text = corr.render();
        assert!(text.contains("to-customer"));
        assert!(text.contains("peer"));
    }

    #[test]
    fn relationship_correlation_counts_unclassified() {
        let analysis = FilteringAnalysis::compute(&paper_example());
        let corr = RelationshipCorrelation::compute(&analysis, |_, _| None);
        assert_eq!(corr.unclassified, 2);
        assert!(corr.per_class.is_empty());
    }

    #[test]
    fn class_indication_fractions() {
        let c = ClassIndications {
            edges: 4,
            forwarding: 2,
            filtering: 3,
            mixed: 1,
        };
        assert!((c.forwarding_fraction() - 0.5).abs() < 1e-9);
        assert!((c.filtering_fraction() - 0.75).abs() < 1e-9);
        assert!((c.mixed_fraction() - 0.25).abs() < 1e-9);
        let empty = ClassIndications::default();
        assert_eq!(empty.forwarding_fraction(), 0.0);
    }

    #[test]
    fn hexbin_buckets_by_log_counts() {
        let mut analysis = FilteringAnalysis::default();
        analysis.edges.insert(
            (Asn::new(1), Asn::new(2)),
            EdgeIndications {
                forwarded: 9, // log10(10) = 1.0
                filtered: 0,  // log10(1) = 0.0
            },
        );
        analysis.edges.insert(
            (Asn::new(1), Asn::new(3)),
            EdgeIndications {
                forwarded: 0,
                filtered: 99, // log10(100) = 2.0
            },
        );
        let bins = analysis.hexbin(1);
        assert_eq!(bins[&(0, 1)], 1);
        assert_eq!(bins[&(2, 0)], 1);
    }
}
