//! RFC 8092 large-community analysis — the paper's footnote-1 future work.
//!
//! The paper restricts its analyses to classic 32-bit communities and notes
//! that networks with 4-byte ASNs cannot encode their identity in the
//! classic owner half: they either bundle under *private* 16-bit ASNs
//! (producing the always-off-path communities of §4.3) or adopt RFC 8092
//! large communities. This module runs the §4-style accounting on the
//! large-community channel and quantifies the substitution effect: as
//! adoption grows, informational signal moves out of the anonymous
//! private-ASN pool and into attributable large communities.

use crate::observation::ObservationSet;
use crate::stats::Ecdf;
use bgpworms_types::{Asn, LargeCommunity};
use std::collections::BTreeSet;

/// §4-style accounting for the large-community channel.
#[derive(Debug, Clone, Default)]
pub struct LargeCommunityAnalysis {
    /// Announcements inspected.
    pub announcements: u64,
    /// Announcements carrying ≥ 1 large community.
    pub with_large: u64,
    /// Distinct large communities.
    pub unique: BTreeSet<LargeCommunity>,
    /// Distinct Global Administrator ASNs.
    pub owners: BTreeSet<Asn>,
    /// Of those owners, the ones that genuinely need RFC 8092 (4-byte ASN).
    pub four_byte_owners: BTreeSet<Asn>,
    /// Propagation distances (hops from the conservatively assumed tagger
    /// position, as in Fig 5a) for on-path large communities.
    distances: Vec<f64>,
    /// Announcements carrying classic communities owned by private ASNs —
    /// the bundling fallback the paper observed (§4.3).
    pub with_private_bundles: u64,
    /// Distinct private 16-bit owner ASNs seen in classic communities.
    pub private_bundle_owners: BTreeSet<Asn>,
}

impl LargeCommunityAnalysis {
    /// Runs the accounting over a parsed observation set.
    pub fn compute(set: &ObservationSet) -> Self {
        let mut analysis = LargeCommunityAnalysis::default();
        for obs in set.announcements() {
            analysis.announcements += 1;
            if !obs.large_communities.is_empty() {
                analysis.with_large += 1;
            }
            for &lc in &obs.large_communities {
                analysis.unique.insert(lc);
                let owner = lc.owner();
                analysis.owners.insert(owner);
                if owner.as_u16().is_none() {
                    analysis.four_byte_owners.insert(owner);
                }
                // Propagation distance: position of the owner on the path
                // (conservative tagger assumption, §4.3); off-path owners
                // contribute the full path length.
                let d = obs
                    .position_of(owner)
                    .unwrap_or(obs.path.len().saturating_sub(1));
                analysis.distances.push(d as f64);
            }
            let mut private_here = false;
            for &c in &obs.communities {
                if c.owner_is_private() {
                    private_here = true;
                    analysis.private_bundle_owners.insert(c.owner());
                }
            }
            if private_here {
                analysis.with_private_bundles += 1;
            }
        }
        analysis
    }

    /// Fraction of announcements carrying large communities.
    pub fn large_fraction(&self) -> f64 {
        if self.announcements == 0 {
            0.0
        } else {
            self.with_large as f64 / self.announcements as f64
        }
    }

    /// Fraction of announcements carrying private-ASN classic bundles.
    pub fn private_bundle_fraction(&self) -> f64 {
        if self.announcements == 0 {
            0.0
        } else {
            self.with_private_bundles as f64 / self.announcements as f64
        }
    }

    /// Propagation-distance ECDF for large communities (Fig 5a analogue).
    pub fn distance_ecdf(&self) -> Ecdf {
        Ecdf::new(self.distances.iter().copied())
    }

    /// Renders the analysis as text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "announcements: {}   with large communities: {} ({:.1}%)",
            self.announcements,
            self.with_large,
            self.large_fraction() * 100.0
        );
        let _ = writeln!(
            out,
            "unique large communities: {}   owners: {} (4-byte: {})",
            self.unique.len(),
            self.owners.len(),
            self.four_byte_owners.len()
        );
        let _ = writeln!(
            out,
            "private-ASN classic bundles: {} announcements ({:.1}%), {} private owners",
            self.with_private_bundles,
            self.private_bundle_fraction() * 100.0,
            self.private_bundle_owners.len()
        );
        let ecdf = self.distance_ecdf();
        if !ecdf.is_empty() {
            let _ = writeln!(out, "\nlarge-community propagation distance ECDF:");
            for hops in 0..=6u32 {
                let _ = writeln!(
                    out,
                    "  {hops} hops\tF = {:.3}",
                    ecdf.fraction_at(f64::from(hops))
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::UpdateObservation;
    use bgpworms_types::Community;

    fn obs(
        prefix: &str,
        path: &[u32],
        comms: &[(u16, u16)],
        large: &[(u32, u32)],
    ) -> UpdateObservation {
        UpdateObservation {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            time: 0,
            peer: Asn::new(path[0]),
            prefix: prefix.parse().unwrap(),
            path: path.iter().map(|&n| Asn::new(n)).collect(),
            raw_hop_count: path.len(),
            prepends: vec![],
            communities: comms.iter().map(|&(a, v)| Community::new(a, v)).collect(),
            large_communities: large
                .iter()
                .map(|&(g, v)| LargeCommunity::new(g, v, 0))
                .collect(),
            is_withdrawal: false,
        }
    }

    fn set(observations: Vec<UpdateObservation>) -> ObservationSet {
        ObservationSet {
            observations,
            messages: vec![("RIS".into(), "rrc00".into(), 1)],
        }
    }

    #[test]
    fn counts_large_and_private_channels() {
        let s = set(vec![
            // 4-byte origin with a large community
            obs("10.0.0.0/16", &[3, 2, 400_001], &[], &[(400_001, 100)]),
            // 16-bit origin bundling under a private ASN
            obs("20.0.0.0/16", &[3, 2, 7], &[(64_600, 200)], &[]),
            // plain announcement
            obs("30.0.0.0/16", &[3, 2, 8], &[(8, 100)], &[]),
        ]);
        let a = LargeCommunityAnalysis::compute(&s);
        assert_eq!(a.announcements, 3);
        assert_eq!(a.with_large, 1);
        assert!((a.large_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.unique.len(), 1);
        assert_eq!(a.four_byte_owners.len(), 1);
        assert!(a.four_byte_owners.contains(&Asn::new(400_001)));
        assert_eq!(a.with_private_bundles, 1);
        assert_eq!(a.private_bundle_owners.len(), 1);
    }

    #[test]
    fn distance_uses_owner_position() {
        // Owner at the path origin: distance = 2 (two hops to the peer).
        let s = set(vec![obs(
            "10.0.0.0/16",
            &[3, 2, 400_001],
            &[],
            &[(400_001, 100)],
        )]);
        let a = LargeCommunityAnalysis::compute(&s);
        let ecdf = a.distance_ecdf();
        assert_eq!(ecdf.len(), 1);
        assert_eq!(ecdf.fraction_at(1.9), 0.0);
        assert_eq!(ecdf.fraction_at(2.0), 1.0);
    }

    #[test]
    fn render_mentions_key_numbers() {
        let s = set(vec![obs(
            "10.0.0.0/16",
            &[3, 2, 400_001],
            &[],
            &[(400_001, 100)],
        )]);
        let text = LargeCommunityAnalysis::compute(&s).render();
        assert!(text.contains("with large communities: 1"));
        assert!(text.contains("4-byte: 1"));
    }

    #[test]
    fn empty_set_is_all_zeroes() {
        let a = LargeCommunityAnalysis::compute(&ObservationSet::default());
        assert_eq!(a.large_fraction(), 0.0);
        assert_eq!(a.private_bundle_fraction(), 0.0);
        assert!(a.distance_ecdf().is_empty());
    }
}
