//! Aligned text tables and TSV export for the `repro` harness output.

/// Renders an aligned text table with a header row.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Renders rows as tab-separated values (for plotting scripts).
pub fn tsv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join("\t"));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup-style ratio (`numerator / denominator`) as `N.Nx`;
/// degenerate denominators render as `-` rather than inf/NaN.
pub fn ratio(numerator: f64, denominator: f64) -> String {
    if denominator <= 0.0 || !denominator.is_finite() || !numerator.is_finite() {
        return "-".into();
    }
    format!("{:.1}x", numerator / denominator)
}

/// Formats a count with thousands separators.
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = text_table(
            &["name", "count"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // all data lines share the same width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn tsv_is_tab_separated() {
        let t = tsv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t, "a\tb\n1\t2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(1234567), "1,234,567");
        assert_eq!(ratio(10.0, 4.0), "2.5x");
        assert_eq!(ratio(1.0, 0.0), "-");
        assert_eq!(ratio(f64::NAN, 2.0), "-");
    }
}
