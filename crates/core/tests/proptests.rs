//! Property-based tests for the measurement pipeline: statistical
//! invariants of the ECDF/histogram toolkit, the MRT→observation parse,
//! and the large-community accounting.

use bgpworms_core::{ArchiveInput, Ecdf, LargeCommunityAnalysis, ObservationSet};
use bgpworms_mrt::MrtWriter;
use bgpworms_types::{AsPath, Asn, Community, LargeCommunity, PathAttributes, Prefix, RouteUpdate};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ecdf_is_monotone_and_bounded(
        samples in proptest::collection::vec(-1e6f64..1e6, 0..200),
        probes in proptest::collection::vec(-1e6f64..1e6, 0..20),
    ) {
        let ecdf = Ecdf::new(samples.iter().copied());
        let mut sorted_probes = probes;
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &sorted_probes {
            let f = ecdf.fraction_at(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f + 1e-12 >= prev, "ECDF must be monotone");
            prev = f;
        }
        if let Some(max) = samples.iter().copied().fold(None, |m: Option<f64>, x| {
            Some(m.map_or(x, |m| m.max(x)))
        }) {
            prop_assert_eq!(ecdf.fraction_at(max), 1.0);
        }
    }

    #[test]
    fn ecdf_quantiles_are_samples_within_range(
        samples in proptest::collection::vec(0f64..100.0, 1..100),
        q in 0f64..=1.0,
    ) {
        let ecdf = Ecdf::new(samples.iter().copied());
        let v = ecdf.quantile(q).unwrap();
        prop_assert!(samples.contains(&v), "quantile must be an observed sample");
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min && v <= max);
    }

    #[test]
    fn observation_roundtrip_preserves_communities(
        path in proptest::collection::btree_set(1u32..5000, 1..6),
        comms in proptest::collection::btree_set(any::<u32>(), 0..8),
        larges in proptest::collection::btree_set(any::<(u32, u32, u32)>(), 0..4),
    ) {
        let path: Vec<Asn> = path.into_iter().map(Asn::new).collect();
        let communities: Vec<Community> =
            comms.into_iter().map(Community::from_u32).collect();
        let large_communities: Vec<LargeCommunity> = larges
            .into_iter()
            .map(|(g, l1, l2)| LargeCommunity::new(g, l1, l2))
            .collect();

        let mut attrs = PathAttributes {
            as_path: AsPath::from_asns(path.clone()),
            next_hop: Some("10.0.0.1".parse().unwrap()),
            ..PathAttributes::default()
        };
        attrs.communities = communities.clone();
        attrs.large_communities = large_communities.clone();
        let prefix: Prefix = "10.0.0.0/16".parse().unwrap();
        let update = RouteUpdate::announce(prefix, attrs);

        let mut w = MrtWriter::new(Vec::new());
        bgpworms_mrt::write_update_into(
            &mut w,
            42,
            path[0],
            Asn::new(64_496),
            "10.0.0.2".parse().unwrap(),
            &update,
        )
        .unwrap();
        let set = ObservationSet::from_archives(&[ArchiveInput {
            platform: "RIS".into(),
            collector: "rrc00".into(),
            mrt: w.into_inner(),
        }])
        .unwrap();

        prop_assert_eq!(set.observations.len(), 1);
        let obs = &set.observations[0];
        prop_assert_eq!(&obs.path, &path);
        // the codec normalizes (sorts) communities; compare as sets
        let mut want = communities;
        bgpworms_types::community::normalize(&mut want);
        let mut got = obs.communities.clone();
        bgpworms_types::community::normalize(&mut got);
        prop_assert_eq!(got, want);
        let mut want_large = large_communities;
        want_large.sort_unstable();
        let mut got_large = obs.large_communities.clone();
        got_large.sort_unstable();
        prop_assert_eq!(got_large, want_large);
    }

    #[test]
    fn large_analysis_fractions_bounded(
        n_plain in 0usize..20,
        n_large in 0usize..20,
    ) {
        let mut observations = Vec::new();
        for i in 0..(n_plain + n_large) {
            let large = if i < n_large {
                vec![LargeCommunity::new(400_000 + i as u32, 100, 0)]
            } else {
                vec![]
            };
            observations.push(bgpworms_core::UpdateObservation {
                platform: "RIS".into(),
                collector: "rrc00".into(),
                time: 0,
                peer: Asn::new(3),
                prefix: format!("10.{}.0.0/16", i % 200).parse().unwrap(),
                path: vec![Asn::new(3), Asn::new(2), Asn::new(1)],
                raw_hop_count: 3,
                prepends: vec![],
                communities: vec![],
                large_communities: large,
                is_withdrawal: false,
            });
        }
        let set = ObservationSet { observations, messages: vec![] };
        let a = LargeCommunityAnalysis::compute(&set);
        prop_assert_eq!(a.announcements as usize, n_plain + n_large);
        prop_assert_eq!(a.with_large as usize, n_large);
        prop_assert!((0.0..=1.0).contains(&a.large_fraction()));
        prop_assert!((0.0..=1.0).contains(&a.private_bundle_fraction()));
        prop_assert_eq!(a.distance_ecdf().len(), n_large);
    }
}
