//! Property tests: MRT archives round-trip arbitrary update batches, and the
//! reader survives arbitrary byte soup without panicking.

use bgpworms_mrt::{
    write_update_into, LossyMrtReader, MrtReader, MrtRecord, MrtWriter, UpdateStream,
};
use bgpworms_types::{AsPath, Asn, Community, Ipv4Prefix, PathAttributes, Prefix, RouteUpdate};
use proptest::prelude::*;

fn arb_update() -> impl Strategy<Value = RouteUpdate> {
    (
        proptest::collection::vec((any::<u32>(), 8u8..=32), 1..6),
        proptest::collection::vec(1u32..1_000_000, 1..6),
        proptest::collection::vec(any::<u32>(), 0..8),
    )
        .prop_map(|(prefixes, path, comms)| {
            let attrs = PathAttributes {
                as_path: AsPath::from_asns(path.into_iter().map(Asn::new)),
                next_hop: Some("10.0.0.1".parse().unwrap()),
                communities: comms.into_iter().map(Community::from_u32).collect(),
                ..PathAttributes::default()
            };
            RouteUpdate {
                withdrawn: vec![],
                attrs,
                announced: prefixes
                    .into_iter()
                    .map(|(a, l)| Prefix::V4(Ipv4Prefix::new(a, l).unwrap()))
                    .collect(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_capped(128))]

    #[test]
    fn archive_roundtrips_update_batches(
        updates in proptest::collection::vec(arb_update(), 1..20),
        peer_as in 1u32..1_000_000,
        ts0 in any::<u32>(),
    ) {
        let mut w = MrtWriter::new(Vec::new());
        for (i, u) in updates.iter().enumerate() {
            write_update_into(
                &mut w,
                ts0.wrapping_add(i as u32),
                Asn::new(peer_as),
                Asn::new(64_500),
                "10.0.0.2".parse().unwrap(),
                u,
            ).unwrap();
        }
        let buf = w.into_inner();
        let decoded: Vec<RouteUpdate> = UpdateStream::new(buf.as_slice())
            .map(|r| r.unwrap().update)
            .collect();
        prop_assert_eq!(decoded, updates);
    }

    #[test]
    fn reader_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = MrtReader::new(data.as_slice());
        // Drain until error or EOF; no panics allowed.
        for _ in 0..64 {
            match r.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn reader_never_panics_on_typed_garbage(
        mrt_type in prop_oneof![Just(13u16), Just(16u16), Just(17u16)],
        subtype in 0u16..8,
        body in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut rec = Vec::new();
        rec.extend_from_slice(&0u32.to_be_bytes());
        rec.extend_from_slice(&mrt_type.to_be_bytes());
        rec.extend_from_slice(&subtype.to_be_bytes());
        rec.extend_from_slice(&(body.len() as u32).to_be_bytes());
        rec.extend_from_slice(&body);
        let mut r = MrtReader::new(rec.as_slice());
        let _ = r.next_record();
    }

    #[test]
    fn lossy_reading_of_a_clean_archive_skips_nothing(
        updates in proptest::collection::vec(arb_update(), 1..10),
    ) {
        let mut w = MrtWriter::new(Vec::new());
        for u in &updates {
            write_update_into(&mut w, 0, Asn::new(2), Asn::new(1),
                "10.0.0.2".parse().unwrap(), u).unwrap();
        }
        let buf = w.into_inner();
        let strict: Vec<MrtRecord> =
            MrtReader::new(buf.as_slice()).map(|r| r.unwrap()).collect();
        let mut lossy = LossyMrtReader::new(buf.as_slice());
        let relaxed: Vec<MrtRecord> = lossy.by_ref().map(|r| r.unwrap()).collect();
        prop_assert_eq!(relaxed, strict);
        prop_assert_eq!(lossy.skipped().total(), 0);
    }

    #[test]
    fn lossy_reader_survives_truncation_and_bit_flips(
        updates in proptest::collection::vec(arb_update(), 1..6),
        frac in 0.0f64..=1.0,
        flips in proptest::collection::vec((any::<usize>(), 0u8..8), 0..8),
    ) {
        let mut w = MrtWriter::new(Vec::new());
        for u in &updates {
            write_update_into(&mut w, 0, Asn::new(2), Asn::new(1),
                "10.0.0.2".parse().unwrap(), u).unwrap();
        }
        let mut buf = w.into_inner();
        // Random truncation...
        let cut = ((buf.len() as f64) * frac) as usize;
        buf.truncate(cut.min(buf.len()));
        // ...and random bit flips anywhere in what remains.
        for (pos, bit) in flips {
            if !buf.is_empty() {
                let i = pos % buf.len();
                buf[i] ^= 1 << bit;
            }
        }
        // Drain the lossy reader: any mix of yielded records, skips, and
        // a final structural error is acceptable — panicking is not, and
        // the skip tally must agree with the record count.
        let mut r = LossyMrtReader::new(buf.as_slice());
        let mut yielded = 0u64;
        loop {
            match r.next_record() {
                Ok(Some(_)) => yielded += 1,
                Ok(None) => break,
                Err(_) => break, // structural damage is a graceful stop
            }
        }
        prop_assert_eq!(yielded + r.skipped().total(), r.records_read());
    }

    #[test]
    fn truncated_archives_error_not_panic(
        updates in proptest::collection::vec(arb_update(), 1..4),
        frac in 0.0f64..1.0,
    ) {
        let mut w = MrtWriter::new(Vec::new());
        for u in &updates {
            write_update_into(&mut w, 0, Asn::new(2), Asn::new(1),
                "10.0.0.2".parse().unwrap(), u).unwrap();
        }
        let buf = w.into_inner();
        let cut = ((buf.len() as f64) * frac) as usize;
        let mut r = MrtReader::new(&buf[..cut]);
        loop {
            match r.next_record() {
                Ok(Some(MrtRecord::Bgp4mp(_))) => continue,
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => break, // graceful error is acceptable
            }
        }
    }
}
