//! RFC 6396 MRT (Multi-Threaded Routing Toolkit) routing-archive reader and
//! writer.
//!
//! (`ARCHITECTURE.md` at the repository root shows where this interchange
//! boundary sits in the workspace.)
//!
//! This is the interchange boundary of the workspace: the simulated route
//! collectors in `bgpworms-routesim` *write* MRT, and the measurement
//! pipeline in `bgpworms-core` *reads* MRT — exactly the formats the paper
//! consumes from RIPE RIS, RouteViews, Isolario, and PCH:
//!
//! * `BGP4MP` / `BGP4MP_ET` `MESSAGE` and `MESSAGE_AS4` records wrapping
//!   full BGP messages (update streams);
//! * `TABLE_DUMP_V2` `PEER_INDEX_TABLE` plus `RIB_IPV4_UNICAST` /
//!   `RIB_IPV6_UNICAST` records (RIB snapshots).
//!
//! Reading is streaming: [`MrtReader`] wraps any [`std::io::Read`] and
//! yields records one at a time without buffering the archive.
//!
//! # Example
//!
//! ```
//! use bgpworms_mrt::{MrtReader, MrtRecord, write_update};
//! use bgpworms_types::{Asn, AsPath, PathAttributes, RouteUpdate};
//!
//! // Write one update...
//! let mut attrs = PathAttributes::default();
//! attrs.as_path = AsPath::from_asns([Asn::new(2), Asn::new(1)]);
//! attrs.next_hop = Some("10.0.0.1".parse().unwrap());
//! let update = RouteUpdate::announce("192.0.2.0/24".parse().unwrap(), attrs);
//! let mut buf = Vec::new();
//! write_update(&mut buf, 1_522_540_800, Asn::new(2), Asn::new(64_500),
//!              "10.0.0.2".parse().unwrap(), &update).unwrap();
//!
//! // ...and read it back.
//! let mut reader = MrtReader::new(buf.as_slice());
//! match reader.next_record().unwrap().unwrap() {
//!     MrtRecord::Bgp4mp(m) => assert_eq!(m.peer_as, Asn::new(2)),
//!     other => panic!("unexpected record {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod read;
pub mod record;
pub mod write;

pub use error::{MrtError, MrtErrorKind};
pub use read::{LossyMrtReader, MrtReader, SkipTally, UpdateStream};
pub use record::{
    Bgp4mpMessage, MrtHeader, MrtRecord, PeerEntry, PeerIndexTable, RibEntry, RibSnapshot,
    StateChange, BGP4MP, BGP4MP_ET, TABLE_DUMP_V2,
};
pub use write::{
    write_rib_dump, write_state_change, write_update, write_update_into, MrtWriter, TableDumpWriter,
};
