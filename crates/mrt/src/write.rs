//! MRT archive writer: BGP4MP update streams and TABLE_DUMP_V2 RIB dumps.
//!
//! The simulated collectors use these to produce archives byte-compatible
//! with what RIS/RouteViews-style collectors publish, which keeps the
//! analysis pipeline honest: it parses real MRT, never simulator internals.

use crate::error::MrtError;
use crate::record::{bgp4mp_subtype, tdv2_subtype, PeerEntry, RibEntry, BGP4MP, TABLE_DUMP_V2};
use bgpworms_types::{Asn, Prefix, RouteUpdate};
use bgpworms_wire::{encode_attributes, encode_update, CodecConfig};
use std::io::Write;
use std::net::IpAddr;

/// Low-level writer emitting raw MRT records.
pub struct MrtWriter<W: Write> {
    inner: W,
    /// Records written so far.
    pub records_written: u64,
}

impl<W: Write> MrtWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        MrtWriter {
            inner,
            records_written: 0,
        }
    }

    /// Writes one record with the given header fields and body.
    pub fn write_record(
        &mut self,
        timestamp: u32,
        mrt_type: u16,
        subtype: u16,
        body: &[u8],
    ) -> Result<(), MrtError> {
        let mut header = [0u8; 12];
        header[0..4].copy_from_slice(&timestamp.to_be_bytes());
        header[4..6].copy_from_slice(&mrt_type.to_be_bytes());
        header[6..8].copy_from_slice(&subtype.to_be_bytes());
        header[8..12].copy_from_slice(&(body.len() as u32).to_be_bytes());
        self.inner.write_all(&header)?;
        self.inner.write_all(body)?;
        self.records_written += 1;
        Ok(())
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

fn push_ip(body: &mut Vec<u8>, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => body.extend_from_slice(&v4.octets()),
        IpAddr::V6(v6) => body.extend_from_slice(&v6.octets()),
    }
}

fn afi_of(ip: IpAddr) -> u16 {
    match ip {
        IpAddr::V4(_) => 1,
        IpAddr::V6(_) => 2,
    }
}

fn unspecified_like(ip: IpAddr) -> IpAddr {
    match ip {
        IpAddr::V4(_) => IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
        IpAddr::V6(_) => IpAddr::V6(std::net::Ipv6Addr::UNSPECIFIED),
    }
}

/// Writes one `BGP4MP MESSAGE_AS4` record wrapping `update`, as seen from a
/// collector peering with `peer_as` at `peer_ip`.
pub fn write_update<W: Write>(
    sink: W,
    timestamp: u32,
    peer_as: Asn,
    local_as: Asn,
    peer_ip: IpAddr,
    update: &RouteUpdate,
) -> Result<W, MrtError> {
    let mut w = MrtWriter::new(sink);
    write_update_into(&mut w, timestamp, peer_as, local_as, peer_ip, update)?;
    Ok(w.into_inner())
}

/// Writes one `BGP4MP MESSAGE_AS4` record into an existing [`MrtWriter`].
pub fn write_update_into<W: Write>(
    w: &mut MrtWriter<W>,
    timestamp: u32,
    peer_as: Asn,
    local_as: Asn,
    peer_ip: IpAddr,
    update: &RouteUpdate,
) -> Result<(), MrtError> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&peer_as.get().to_be_bytes());
    body.extend_from_slice(&local_as.get().to_be_bytes());
    body.extend_from_slice(&0u16.to_be_bytes()); // ifindex
    body.extend_from_slice(&afi_of(peer_ip).to_be_bytes());
    push_ip(&mut body, peer_ip);
    push_ip(&mut body, unspecified_like(peer_ip));
    let msg = encode_update(update, CodecConfig::modern())?;
    body.extend_from_slice(&msg);
    w.write_record(timestamp, BGP4MP, bgp4mp_subtype::MESSAGE_AS4, &body)
}

/// Writes one `BGP4MP STATE_CHANGE_AS4` record.
pub fn write_state_change<W: Write>(
    w: &mut MrtWriter<W>,
    timestamp: u32,
    peer_as: Asn,
    local_as: Asn,
    peer_ip: IpAddr,
    old_state: u16,
    new_state: u16,
) -> Result<(), MrtError> {
    let mut body = Vec::with_capacity(32);
    body.extend_from_slice(&peer_as.get().to_be_bytes());
    body.extend_from_slice(&local_as.get().to_be_bytes());
    body.extend_from_slice(&0u16.to_be_bytes());
    body.extend_from_slice(&afi_of(peer_ip).to_be_bytes());
    push_ip(&mut body, peer_ip);
    push_ip(&mut body, unspecified_like(peer_ip));
    body.extend_from_slice(&old_state.to_be_bytes());
    body.extend_from_slice(&new_state.to_be_bytes());
    w.write_record(timestamp, BGP4MP, bgp4mp_subtype::STATE_CHANGE_AS4, &body)
}

/// Writer for a TABLE_DUMP_V2 RIB dump: emits the PEER_INDEX_TABLE first,
/// then per-prefix RIB records with monotonically increasing sequence
/// numbers.
pub struct TableDumpWriter<W: Write> {
    writer: MrtWriter<W>,
    peer_count: usize,
    sequence: u32,
    timestamp: u32,
}

impl<W: Write> TableDumpWriter<W> {
    /// Creates the dump writer and immediately writes the peer index table.
    pub fn new(
        sink: W,
        timestamp: u32,
        collector_id: u32,
        view_name: &str,
        peers: &[PeerEntry],
    ) -> Result<Self, MrtError> {
        if view_name.len() > u16::MAX as usize {
            return Err(MrtError::FieldTooLong("view name"));
        }
        let mut body = Vec::with_capacity(16 + peers.len() * 12);
        body.extend_from_slice(&collector_id.to_be_bytes());
        body.extend_from_slice(&(view_name.len() as u16).to_be_bytes());
        body.extend_from_slice(view_name.as_bytes());
        body.extend_from_slice(&(peers.len() as u16).to_be_bytes());
        for p in peers {
            // Always use the AS4 encoding; set the v6 bit per address.
            let ptype: u8 = match p.ip {
                IpAddr::V4(_) => 0x02,
                IpAddr::V6(_) => 0x03,
            };
            body.push(ptype);
            body.extend_from_slice(&p.bgp_id.to_be_bytes());
            push_ip(&mut body, p.ip);
            body.extend_from_slice(&p.asn.get().to_be_bytes());
        }
        let mut writer = MrtWriter::new(sink);
        writer.write_record(
            timestamp,
            TABLE_DUMP_V2,
            tdv2_subtype::PEER_INDEX_TABLE,
            &body,
        )?;
        Ok(TableDumpWriter {
            writer,
            peer_count: peers.len(),
            sequence: 0,
            timestamp,
        })
    }

    /// Writes one per-prefix RIB record. Entries must reference valid peer
    /// indices.
    pub fn write_rib(&mut self, prefix: Prefix, entries: &[RibEntry]) -> Result<(), MrtError> {
        for e in entries {
            if usize::from(e.peer_index) >= self.peer_count {
                return Err(MrtError::UnknownPeerIndex(e.peer_index));
            }
        }
        let mut body = Vec::with_capacity(32);
        body.extend_from_slice(&self.sequence.to_be_bytes());
        self.sequence = self.sequence.wrapping_add(1);
        let subtype = match prefix {
            Prefix::V4(p) => {
                bgpworms_wire::nlri::encode_v4(p, &mut body);
                tdv2_subtype::RIB_IPV4_UNICAST
            }
            Prefix::V6(p) => {
                bgpworms_wire::nlri::encode_v6(p, &mut body);
                tdv2_subtype::RIB_IPV6_UNICAST
            }
        };
        body.extend_from_slice(&(entries.len() as u16).to_be_bytes());
        for e in entries {
            body.extend_from_slice(&e.peer_index.to_be_bytes());
            body.extend_from_slice(&e.originated_time.to_be_bytes());
            // RFC 6396 §4.3.4: 4-octet ASNs in RIB attributes.
            let attrs = encode_attributes(&e.attrs, &[], &[], CodecConfig::modern())?;
            body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
            body.extend_from_slice(&attrs);
        }
        self.writer
            .write_record(self.timestamp, TABLE_DUMP_V2, subtype, &body)
    }

    /// Number of RIB records written so far.
    pub fn rib_records(&self) -> u32 {
        self.sequence
    }

    /// Finishes the dump, returning the sink.
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

/// Convenience: writes a complete RIB dump in one call.
pub fn write_rib_dump<W: Write>(
    sink: W,
    timestamp: u32,
    collector_id: u32,
    view_name: &str,
    peers: &[PeerEntry],
    ribs: &[(Prefix, Vec<RibEntry>)],
) -> Result<W, MrtError> {
    let mut w = TableDumpWriter::new(sink, timestamp, collector_id, view_name, peers)?;
    for (prefix, entries) in ribs {
        w.write_rib(*prefix, entries)?;
    }
    Ok(w.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::MrtReader;
    use crate::record::MrtRecord;
    use bgpworms_types::{AsPath, PathAttributes};

    fn sample_update() -> RouteUpdate {
        let mut attrs = PathAttributes {
            as_path: AsPath::from_asns([Asn::new(2), Asn::new(1)]),
            next_hop: Some("10.0.0.1".parse().unwrap()),
            ..PathAttributes::default()
        };
        attrs.add_community(bgpworms_types::Community::new(2, 100));
        RouteUpdate::announce("192.0.2.0/24".parse().unwrap(), attrs)
    }

    #[test]
    fn update_record_roundtrip() {
        let u = sample_update();
        let buf = write_update(
            Vec::new(),
            1_522_540_800,
            Asn::new(2),
            Asn::new(64_500),
            "10.0.0.2".parse().unwrap(),
            &u,
        )
        .unwrap();
        let mut r = MrtReader::new(buf.as_slice());
        match r.next_record().unwrap().unwrap() {
            MrtRecord::Bgp4mp(m) => {
                assert_eq!(m.header.timestamp, 1_522_540_800);
                assert_eq!(m.peer_as, Asn::new(2));
                assert_eq!(m.local_as, Asn::new(64_500));
                assert_eq!(m.peer_ip, "10.0.0.2".parse::<IpAddr>().unwrap());
                assert_eq!(m.update, u);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn update_record_roundtrip_v6_peer() {
        let u = sample_update();
        let buf = write_update(
            Vec::new(),
            7,
            Asn::new(4_200_000_001),
            Asn::new(64_500),
            "2001:db8::2".parse().unwrap(),
            &u,
        )
        .unwrap();
        let mut r = MrtReader::new(buf.as_slice());
        match r.next_record().unwrap().unwrap() {
            MrtRecord::Bgp4mp(m) => {
                assert_eq!(m.peer_as, Asn::new(4_200_000_001));
                assert!(m.peer_ip.is_ipv6());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn state_change_roundtrip() {
        let mut w = MrtWriter::new(Vec::new());
        write_state_change(
            &mut w,
            9,
            Asn::new(2),
            Asn::new(64_500),
            "10.0.0.2".parse().unwrap(),
            6,
            1,
        )
        .unwrap();
        let buf = w.into_inner();
        let mut r = MrtReader::new(buf.as_slice());
        match r.next_record().unwrap().unwrap() {
            MrtRecord::StateChange(s) => {
                assert_eq!(s.old_state, 6);
                assert_eq!(s.new_state, 1);
                assert_eq!(s.peer_as, Asn::new(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table_dump_roundtrip() {
        let peers = vec![
            PeerEntry {
                bgp_id: 0x0101_0101,
                ip: "10.0.0.2".parse().unwrap(),
                asn: Asn::new(2),
            },
            PeerEntry {
                bgp_id: 0x0202_0202,
                ip: "2001:db8::2".parse().unwrap(),
                asn: Asn::new(4_200_000_001),
            },
        ];
        let entry = RibEntry {
            peer_index: 1,
            originated_time: 100,
            attrs: sample_update().attrs,
        };
        let ribs = vec![(
            "192.0.2.0/24".parse::<Prefix>().unwrap(),
            vec![entry.clone()],
        )];
        let buf = write_rib_dump(Vec::new(), 50, 0xC0FF_EE00, "repro", &peers, &ribs).unwrap();

        let mut r = MrtReader::new(buf.as_slice());
        match r.next_record().unwrap().unwrap() {
            MrtRecord::PeerIndexTable(t) => {
                assert_eq!(t.view_name, "repro");
                assert_eq!(t.collector_id, 0xC0FF_EE00);
                assert_eq!(t.peers, peers);
            }
            other => panic!("unexpected {other:?}"),
        }
        match r.next_record().unwrap().unwrap() {
            MrtRecord::Rib(rib) => {
                assert_eq!(rib.sequence, 0);
                assert_eq!(rib.prefix, "192.0.2.0/24".parse::<Prefix>().unwrap());
                assert_eq!(rib.entries, vec![entry]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn v6_rib_roundtrip() {
        let peers = vec![PeerEntry {
            bgp_id: 1,
            ip: "10.0.0.2".parse().unwrap(),
            asn: Asn::new(2),
        }];
        let entry = RibEntry {
            peer_index: 0,
            originated_time: 1,
            attrs: PathAttributes {
                as_path: AsPath::from_asns([Asn::new(2)]),
                ..PathAttributes::default()
            },
        };
        let ribs = vec![(
            "2001:db8::/32".parse::<Prefix>().unwrap(),
            vec![entry.clone()],
        )];
        let buf = write_rib_dump(Vec::new(), 1, 1, "", &peers, &ribs).unwrap();
        let mut r = MrtReader::new(buf.as_slice());
        r.next_record().unwrap(); // index table
        match r.next_record().unwrap().unwrap() {
            MrtRecord::Rib(rib) => {
                assert!(rib.prefix.is_v6());
                assert_eq!(rib.entries, vec![entry]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rib_entry_with_bad_peer_index_rejected() {
        let peers = vec![PeerEntry {
            bgp_id: 1,
            ip: "10.0.0.2".parse().unwrap(),
            asn: Asn::new(2),
        }];
        let mut w = TableDumpWriter::new(Vec::new(), 1, 1, "v", &peers).unwrap();
        let entry = RibEntry {
            peer_index: 7,
            originated_time: 1,
            attrs: PathAttributes::default(),
        };
        assert!(matches!(
            w.write_rib("10.0.0.0/8".parse().unwrap(), &[entry]),
            Err(MrtError::UnknownPeerIndex(7))
        ));
    }

    #[test]
    fn multiple_updates_stream_in_order() {
        let mut w = MrtWriter::new(Vec::new());
        let u = sample_update();
        for ts in 0..5u32 {
            write_update_into(
                &mut w,
                ts,
                Asn::new(2),
                Asn::new(64_500),
                "10.0.0.2".parse().unwrap(),
                &u,
            )
            .unwrap();
        }
        assert_eq!(w.records_written, 5);
        let buf = w.into_inner();
        let stamps: Vec<u32> = MrtReader::new(buf.as_slice())
            .map(|r| r.unwrap().header().timestamp)
            .collect();
        assert_eq!(stamps, vec![0, 1, 2, 3, 4]);
    }
}
