//! MRT record structures (RFC 6396 §4): the common header, BGP4MP message
//! and state-change records, and TABLE_DUMP_V2 RIB snapshots.

use bgpworms_types::{Asn, PathAttributes, Prefix, RouteUpdate};
use std::net::IpAddr;

/// MRT type: TABLE_DUMP_V2 (RIB snapshots).
pub const TABLE_DUMP_V2: u16 = 13;
/// MRT type: BGP4MP (update/state messages).
pub const BGP4MP: u16 = 16;
/// MRT type: BGP4MP with microsecond timestamps.
pub const BGP4MP_ET: u16 = 17;

/// BGP4MP subtypes (RFC 6396 §4.4, RFC 8050 not included).
pub mod bgp4mp_subtype {
    /// State change with 2-octet ASNs.
    pub const STATE_CHANGE: u16 = 0;
    /// BGP message with 2-octet ASNs.
    pub const MESSAGE: u16 = 1;
    /// BGP message with 4-octet ASNs.
    pub const MESSAGE_AS4: u16 = 4;
    /// State change with 4-octet ASNs.
    pub const STATE_CHANGE_AS4: u16 = 5;
}

/// TABLE_DUMP_V2 subtypes.
pub mod tdv2_subtype {
    /// Peer index table.
    pub const PEER_INDEX_TABLE: u16 = 1;
    /// IPv4 unicast RIB.
    pub const RIB_IPV4_UNICAST: u16 = 2;
    /// IPv6 unicast RIB.
    pub const RIB_IPV6_UNICAST: u16 = 4;
}

/// The 12-byte MRT common header (plus the extended-timestamp microseconds
/// when the type is `*_ET`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrtHeader {
    /// Seconds since the Unix epoch.
    pub timestamp: u32,
    /// Microsecond part for `_ET` records.
    pub microseconds: Option<u32>,
    /// MRT type.
    pub mrt_type: u16,
    /// MRT subtype.
    pub subtype: u16,
}

/// A BGP4MP `MESSAGE`/`MESSAGE_AS4` record: one BGP UPDATE as seen on a
/// collector peering session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// Record header.
    pub header: MrtHeader,
    /// The peer (the collector's BGP neighbor) AS.
    pub peer_as: Asn,
    /// The collector-side AS.
    pub local_as: Asn,
    /// Interface index (always 0 in our archives).
    pub ifindex: u16,
    /// Peer IP address.
    pub peer_ip: IpAddr,
    /// Local IP address.
    pub local_ip: IpAddr,
    /// The embedded UPDATE.
    pub update: RouteUpdate,
}

/// A BGP4MP `STATE_CHANGE` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateChange {
    /// Record header.
    pub header: MrtHeader,
    /// The peer AS.
    pub peer_as: Asn,
    /// The collector-side AS.
    pub local_as: Asn,
    /// Peer IP address.
    pub peer_ip: IpAddr,
    /// Local IP address.
    pub local_ip: IpAddr,
    /// FSM state before the change (RFC 4271 §8.2.2 numbering).
    pub old_state: u16,
    /// FSM state after the change.
    pub new_state: u16,
}

/// One peer of a TABLE_DUMP_V2 PEER_INDEX_TABLE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerEntry {
    /// Peer BGP identifier.
    pub bgp_id: u32,
    /// Peer IP address.
    pub ip: IpAddr,
    /// Peer AS.
    pub asn: Asn,
}

/// The PEER_INDEX_TABLE that RIB records reference by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerIndexTable {
    /// Collector BGP identifier.
    pub collector_id: u32,
    /// Optional view name.
    pub view_name: String,
    /// Peers, in index order.
    pub peers: Vec<PeerEntry>,
}

/// One route in a RIB snapshot: which peer advertised it and with what
/// attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// Index into the PEER_INDEX_TABLE.
    pub peer_index: u16,
    /// When the route was received (Unix seconds).
    pub originated_time: u32,
    /// Path attributes (4-octet AS encoding per RFC 6396).
    pub attrs: PathAttributes,
}

/// A RIB snapshot for one prefix: every peer's best route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibSnapshot {
    /// Record header.
    pub header: MrtHeader,
    /// Monotonic sequence number within the dump.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Prefix,
    /// Entries, one per advertising peer.
    pub entries: Vec<RibEntry>,
}

/// Any record we can read from an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtRecord {
    /// BGP4MP MESSAGE / MESSAGE_AS4 (optionally `_ET`).
    Bgp4mp(Bgp4mpMessage),
    /// BGP4MP STATE_CHANGE / STATE_CHANGE_AS4.
    StateChange(StateChange),
    /// TABLE_DUMP_V2 PEER_INDEX_TABLE.
    PeerIndexTable(PeerIndexTable),
    /// TABLE_DUMP_V2 RIB_IPV4_UNICAST / RIB_IPV6_UNICAST.
    Rib(RibSnapshot),
    /// A record type we skip but surface for accounting.
    Unknown {
        /// Record header.
        header: MrtHeader,
        /// Raw body.
        body: Vec<u8>,
    },
}

impl MrtRecord {
    /// The record's header.
    pub fn header(&self) -> MrtHeader {
        match self {
            MrtRecord::Bgp4mp(m) => m.header,
            MrtRecord::StateChange(s) => s.header,
            MrtRecord::PeerIndexTable(_) => MrtHeader {
                timestamp: 0,
                microseconds: None,
                mrt_type: TABLE_DUMP_V2,
                subtype: tdv2_subtype::PEER_INDEX_TABLE,
            },
            MrtRecord::Rib(r) => r.header,
            MrtRecord::Unknown { header, .. } => *header,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_header_accessor() {
        let h = MrtHeader {
            timestamp: 123,
            microseconds: Some(7),
            mrt_type: BGP4MP_ET,
            subtype: bgp4mp_subtype::MESSAGE_AS4,
        };
        let rec = MrtRecord::Unknown {
            header: h,
            body: vec![],
        };
        assert_eq!(rec.header(), h);
    }

    #[test]
    fn subtype_constants_match_rfc() {
        assert_eq!(TABLE_DUMP_V2, 13);
        assert_eq!(BGP4MP, 16);
        assert_eq!(BGP4MP_ET, 17);
        assert_eq!(bgp4mp_subtype::MESSAGE, 1);
        assert_eq!(bgp4mp_subtype::MESSAGE_AS4, 4);
        assert_eq!(tdv2_subtype::PEER_INDEX_TABLE, 1);
        assert_eq!(tdv2_subtype::RIB_IPV4_UNICAST, 2);
        assert_eq!(tdv2_subtype::RIB_IPV6_UNICAST, 4);
    }
}
