//! Errors for MRT archive reading and writing.

use bgpworms_wire::WireError;
use std::fmt;
use std::io;

/// Errors raised while reading or writing MRT archives.
#[derive(Debug)]
pub enum MrtError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The record body ended before a field could be read.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// The record declares an implausible body length.
    BadRecordLength(u32),
    /// An MRT (type, subtype) combination we cannot interpret.
    UnsupportedSubtype {
        /// MRT type.
        mrt_type: u16,
        /// MRT subtype.
        subtype: u16,
    },
    /// An embedded BGP message failed to decode.
    Bgp(WireError),
    /// An address family value that is neither IPv4 (1) nor IPv6 (2).
    BadAddressFamily(u16),
    /// A RIB entry references a peer index missing from the
    /// PEER_INDEX_TABLE.
    UnknownPeerIndex(u16),
    /// The view name or another variable field exceeds its length bound.
    FieldTooLong(&'static str),
}

/// Coarse classification of an [`MrtError`] — one variant per error kind,
/// without the payload. This is the key of the lossy reader's per-kind
/// skip tally ([`crate::SkipTally`]): `Ord` so tallies iterate (and
/// render) in a stable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MrtErrorKind {
    /// Underlying I/O failure.
    Io,
    /// A record or field ended before it could be read.
    Truncated,
    /// An implausible record body length.
    BadRecordLength,
    /// An MRT (type, subtype) combination we cannot interpret.
    UnsupportedSubtype,
    /// An embedded BGP message failed to decode.
    Bgp,
    /// An address family that is neither IPv4 nor IPv6.
    BadAddressFamily,
    /// A RIB entry referencing a peer index missing from the index table.
    UnknownPeerIndex,
    /// A variable-length field exceeding its bound.
    FieldTooLong,
}

impl fmt::Display for MrtErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MrtErrorKind::Io => "i/o",
            MrtErrorKind::Truncated => "truncated",
            MrtErrorKind::BadRecordLength => "bad-record-length",
            MrtErrorKind::UnsupportedSubtype => "unsupported-subtype",
            MrtErrorKind::Bgp => "bad-bgp-message",
            MrtErrorKind::BadAddressFamily => "bad-address-family",
            MrtErrorKind::UnknownPeerIndex => "unknown-peer-index",
            MrtErrorKind::FieldTooLong => "field-too-long",
        })
    }
}

impl MrtError {
    /// This error's [`MrtErrorKind`] — the classification the lossy
    /// reader tallies skipped records under.
    pub fn kind(&self) -> MrtErrorKind {
        match self {
            MrtError::Io(_) => MrtErrorKind::Io,
            MrtError::Truncated { .. } => MrtErrorKind::Truncated,
            MrtError::BadRecordLength(_) => MrtErrorKind::BadRecordLength,
            MrtError::UnsupportedSubtype { .. } => MrtErrorKind::UnsupportedSubtype,
            MrtError::Bgp(_) => MrtErrorKind::Bgp,
            MrtError::BadAddressFamily(_) => MrtErrorKind::BadAddressFamily,
            MrtError::UnknownPeerIndex(_) => MrtErrorKind::UnknownPeerIndex,
            MrtError::FieldTooLong(_) => MrtErrorKind::FieldTooLong,
        }
    }
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Io(e) => write!(f, "I/O error: {e}"),
            MrtError::Truncated { what } => write!(f, "truncated MRT record reading {what}"),
            MrtError::BadRecordLength(l) => write!(f, "implausible MRT record length {l}"),
            MrtError::UnsupportedSubtype { mrt_type, subtype } => {
                write!(f, "unsupported MRT type/subtype {mrt_type}/{subtype}")
            }
            MrtError::Bgp(e) => write!(f, "embedded BGP message: {e}"),
            MrtError::BadAddressFamily(afi) => write!(f, "bad address family {afi}"),
            MrtError::UnknownPeerIndex(i) => write!(f, "RIB entry references unknown peer {i}"),
            MrtError::FieldTooLong(what) => write!(f, "{what} too long"),
        }
    }
}

impl std::error::Error for MrtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrtError::Io(e) => Some(e),
            MrtError::Bgp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MrtError {
    fn from(e: io::Error) -> Self {
        MrtError::Io(e)
    }
}

impl From<WireError> for MrtError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated { what, .. } => MrtError::Truncated { what },
            other => MrtError::Bgp(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MrtError::UnsupportedSubtype {
            mrt_type: 13,
            subtype: 99,
        };
        assert!(e.to_string().contains("13/99"));
        let io_err = MrtError::Io(io::Error::other("boom"));
        assert!(std::error::Error::source(&io_err).is_some());
        let wire = MrtError::Bgp(WireError::BadMarker);
        assert!(wire.to_string().contains("marker"));
    }

    #[test]
    fn kinds_classify_and_order_stably() {
        assert_eq!(
            MrtError::Bgp(WireError::BadMarker).kind(),
            MrtErrorKind::Bgp
        );
        assert_eq!(
            MrtError::Truncated { what: "x" }.kind(),
            MrtErrorKind::Truncated
        );
        assert_eq!(
            MrtError::BadRecordLength(9).kind().to_string(),
            "bad-record-length"
        );
        // Ord is part of the tally-rendering contract.
        assert!(MrtErrorKind::Io < MrtErrorKind::FieldTooLong);
    }

    #[test]
    fn wire_truncation_maps_to_mrt_truncation() {
        let e: MrtError = WireError::Truncated {
            what: "x",
            needed: 4,
            available: 0,
        }
        .into();
        assert!(matches!(e, MrtError::Truncated { what: "x" }));
    }
}
