//! Streaming MRT reader: wraps any [`Read`] and yields records one at a time.

use crate::error::MrtError;
use crate::record::{
    bgp4mp_subtype, tdv2_subtype, Bgp4mpMessage, MrtHeader, MrtRecord, PeerEntry, PeerIndexTable,
    RibEntry, RibSnapshot, StateChange, BGP4MP, BGP4MP_ET, TABLE_DUMP_V2,
};
use bgpworms_types::{Asn, Prefix};
use bgpworms_wire::cursor::Cursor;
use bgpworms_wire::{decode_message, BgpMessage, CodecConfig};
use std::io::Read;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Upper bound on a single MRT record body; real archives stay far below
/// this, and it caps memory on corrupt length fields.
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// A streaming reader over an MRT archive.
pub struct MrtReader<R: Read> {
    inner: R,
    /// Records read so far (including skipped/unknown ones).
    pub records_read: u64,
}

impl<R: Read> MrtReader<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        MrtReader {
            inner,
            records_read: 0,
        }
    }

    /// Reads the next record; `Ok(None)` at clean end-of-archive.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        let mut header_buf = [0u8; 12];
        match read_exact_or_eof(&mut self.inner, &mut header_buf)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => {
                return Err(MrtError::Truncated {
                    what: "MRT common header",
                })
            }
            ReadOutcome::Full => {}
        }

        let timestamp =
            u32::from_be_bytes([header_buf[0], header_buf[1], header_buf[2], header_buf[3]]);
        let mrt_type = u16::from_be_bytes([header_buf[4], header_buf[5]]);
        let subtype = u16::from_be_bytes([header_buf[6], header_buf[7]]);
        let length =
            u32::from_be_bytes([header_buf[8], header_buf[9], header_buf[10], header_buf[11]]);

        if length > MAX_RECORD_LEN {
            return Err(MrtError::BadRecordLength(length));
        }

        let mut body = vec![0u8; length as usize];
        self.inner
            .read_exact(&mut body)
            .map_err(|_| MrtError::Truncated {
                what: "MRT record body",
            })?;

        self.records_read += 1;

        let mut header = MrtHeader {
            timestamp,
            microseconds: None,
            mrt_type,
            subtype,
        };

        // The *_ET types carry a microsecond field at the head of the body.
        let body_slice: &[u8] = if mrt_type == BGP4MP_ET {
            if body.len() < 4 {
                return Err(MrtError::Truncated {
                    what: "extended timestamp",
                });
            }
            header.microseconds = Some(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
            &body[4..]
        } else {
            &body
        };

        let record = match mrt_type {
            BGP4MP | BGP4MP_ET => parse_bgp4mp(header, body_slice)?,
            TABLE_DUMP_V2 => parse_table_dump_v2(header, body_slice)?,
            _ => MrtRecord::Unknown {
                header,
                body: body_slice.to_vec(),
            },
        };
        Ok(Some(record))
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, MrtError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 {
                ReadOutcome::Eof
            } else {
                ReadOutcome::Partial
            });
        }
        filled += n;
    }
    Ok(ReadOutcome::Full)
}

fn read_ip(c: &mut Cursor<'_>, afi: u16) -> Result<IpAddr, MrtError> {
    match afi {
        1 => Ok(IpAddr::V4(Ipv4Addr::from(c.u32("ipv4 address")?))),
        2 => Ok(IpAddr::V6(Ipv6Addr::from(c.u128("ipv6 address")?))),
        other => Err(MrtError::BadAddressFamily(other)),
    }
}

fn parse_bgp4mp(header: MrtHeader, body: &[u8]) -> Result<MrtRecord, MrtError> {
    let mut c = Cursor::new(body);
    let as4 = matches!(
        header.subtype,
        bgp4mp_subtype::MESSAGE_AS4 | bgp4mp_subtype::STATE_CHANGE_AS4
    );
    let (peer_as, local_as) = if as4 {
        (c.u32("peer AS")?, c.u32("local AS")?)
    } else {
        (u32::from(c.u16("peer AS")?), u32::from(c.u16("local AS")?))
    };
    let ifindex = c.u16("interface index")?;
    let afi = c.u16("address family")?;
    let peer_ip = read_ip(&mut c, afi)?;
    let local_ip = read_ip(&mut c, afi)?;

    match header.subtype {
        bgp4mp_subtype::MESSAGE | bgp4mp_subtype::MESSAGE_AS4 => {
            let cfg = if as4 {
                CodecConfig::modern()
            } else {
                CodecConfig::legacy()
            };
            let rest = c.take_rest();
            let (msg, _) = decode_message(rest, cfg)?;
            let update = match msg {
                BgpMessage::Update(u) => u,
                // OPENs/KEEPALIVEs inside MESSAGE records are legal but rare;
                // surface them as empty updates so streaming callers can skip.
                _ => bgpworms_types::RouteUpdate::default(),
            };
            Ok(MrtRecord::Bgp4mp(Bgp4mpMessage {
                header,
                peer_as: Asn::new(peer_as),
                local_as: Asn::new(local_as),
                ifindex,
                peer_ip,
                local_ip,
                update,
            }))
        }
        bgp4mp_subtype::STATE_CHANGE | bgp4mp_subtype::STATE_CHANGE_AS4 => {
            let old_state = c.u16("old state")?;
            let new_state = c.u16("new state")?;
            Ok(MrtRecord::StateChange(StateChange {
                header,
                peer_as: Asn::new(peer_as),
                local_as: Asn::new(local_as),
                peer_ip,
                local_ip,
                old_state,
                new_state,
            }))
        }
        other => Err(MrtError::UnsupportedSubtype {
            mrt_type: header.mrt_type,
            subtype: other,
        }),
    }
}

fn parse_table_dump_v2(header: MrtHeader, body: &[u8]) -> Result<MrtRecord, MrtError> {
    let mut c = Cursor::new(body);
    match header.subtype {
        tdv2_subtype::PEER_INDEX_TABLE => {
            let collector_id = c.u32("collector id")?;
            let name_len = c.u16("view name length")? as usize;
            let name_bytes = c.take("view name", name_len)?;
            let view_name = String::from_utf8_lossy(name_bytes).into_owned();
            let peer_count = c.u16("peer count")? as usize;
            let mut peers = Vec::with_capacity(peer_count);
            for _ in 0..peer_count {
                let ptype = c.u8("peer type")?;
                let bgp_id = c.u32("peer bgp id")?;
                let ip = if ptype & 0x01 != 0 {
                    IpAddr::V6(Ipv6Addr::from(c.u128("peer ipv6")?))
                } else {
                    IpAddr::V4(Ipv4Addr::from(c.u32("peer ipv4")?))
                };
                let asn = if ptype & 0x02 != 0 {
                    c.u32("peer as4")?
                } else {
                    u32::from(c.u16("peer as2")?)
                };
                peers.push(PeerEntry {
                    bgp_id,
                    ip,
                    asn: Asn::new(asn),
                });
            }
            Ok(MrtRecord::PeerIndexTable(PeerIndexTable {
                collector_id,
                view_name,
                peers,
            }))
        }
        tdv2_subtype::RIB_IPV4_UNICAST | tdv2_subtype::RIB_IPV6_UNICAST => {
            let sequence = c.u32("rib sequence")?;
            let prefix = if header.subtype == tdv2_subtype::RIB_IPV4_UNICAST {
                Prefix::V4(bgpworms_wire::nlri::decode_v4(&mut c)?)
            } else {
                Prefix::V6(bgpworms_wire::nlri::decode_v6(&mut c)?)
            };
            let entry_count = c.u16("rib entry count")? as usize;
            let mut entries = Vec::with_capacity(entry_count);
            for _ in 0..entry_count {
                let peer_index = c.u16("rib peer index")?;
                let originated_time = c.u32("rib originated time")?;
                let attr_len = c.u16("rib attribute length")? as usize;
                let attr_bytes = c.take("rib attributes", attr_len)?;
                // RFC 6396 §4.3.4: RIB attributes always use 4-octet ASNs.
                let decoded = bgpworms_wire::decode_attributes(attr_bytes, CodecConfig::modern())?;
                entries.push(RibEntry {
                    peer_index,
                    originated_time,
                    attrs: decoded.attrs,
                });
            }
            Ok(MrtRecord::Rib(RibSnapshot {
                header,
                sequence,
                prefix,
                entries,
            }))
        }
        other => Err(MrtError::UnsupportedSubtype {
            mrt_type: header.mrt_type,
            subtype: other,
        }),
    }
}

impl<R: Read> Iterator for MrtReader<R> {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Adapter over [`MrtReader`] that yields only BGP4MP update messages,
/// skipping state changes, RIB records, and unknown record types.
pub struct UpdateStream<R: Read> {
    reader: MrtReader<R>,
}

impl<R: Read> UpdateStream<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        UpdateStream {
            reader: MrtReader::new(inner),
        }
    }
}

impl<R: Read> Iterator for UpdateStream<R> {
    type Item = Result<Bgp4mpMessage, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.reader.next_record() {
                Ok(Some(MrtRecord::Bgp4mp(m))) => return Some(Ok(m)),
                Ok(Some(_)) => continue,
                Ok(None) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_archive_is_clean_eof() {
        let mut r = MrtReader::new(&[][..]);
        assert!(r.next_record().unwrap().is_none());
        assert_eq!(r.records_read, 0);
    }

    #[test]
    fn partial_header_is_truncation() {
        let mut r = MrtReader::new(&[0u8; 5][..]);
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Truncated {
                what: "MRT common header"
            })
        ));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut h = vec![0u8; 12];
        h[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut r = MrtReader::new(h.as_slice());
        assert!(matches!(r.next_record(), Err(MrtError::BadRecordLength(_))));
    }

    #[test]
    fn unknown_type_surfaces_body() {
        let mut rec = vec![0u8; 12];
        rec[4..6].copy_from_slice(&999u16.to_be_bytes());
        rec[8..12].copy_from_slice(&3u32.to_be_bytes());
        rec.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let mut r = MrtReader::new(rec.as_slice());
        match r.next_record().unwrap().unwrap() {
            MrtRecord::Unknown { header, body } => {
                assert_eq!(header.mrt_type, 999);
                assert_eq!(body, vec![0xAA, 0xBB, 0xCC]);
            }
            other => panic!("expected unknown, got {other:?}"),
        }
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn truncated_body_is_error() {
        let mut rec = vec![0u8; 12];
        rec[4..6].copy_from_slice(&999u16.to_be_bytes());
        rec[8..12].copy_from_slice(&10u32.to_be_bytes());
        rec.extend_from_slice(&[1, 2, 3]); // promised 10, provide 3
        let mut r = MrtReader::new(rec.as_slice());
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Truncated {
                what: "MRT record body"
            })
        ));
    }
}
