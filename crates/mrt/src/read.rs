//! Streaming MRT reader: wraps any [`Read`] and yields records one at a time.
//!
//! Two reading modes share one parser:
//!
//! * [`MrtReader`] is **strict**: the first malformed record stops the
//!   stream with an error — right for archives this workspace wrote
//!   itself, where any damage is a bug.
//! * [`LossyMrtReader`] is for archives from the wild (RIS / RouteViews
//!   collectors occasionally emit records this decoder cannot interpret):
//!   a record whose *body was fully read* but failed to parse is skipped
//!   and tallied per [`MrtErrorKind`] in a [`SkipTally`], and reading
//!   continues at the next record. Errors that damage the *stream
//!   framing* itself — truncated header or body, implausible declared
//!   length, I/O failure — still stop it: past those there is no reliable
//!   next record boundary to continue from.

use crate::error::{MrtError, MrtErrorKind};
use crate::record::{
    bgp4mp_subtype, tdv2_subtype, Bgp4mpMessage, MrtHeader, MrtRecord, PeerEntry, PeerIndexTable,
    RibEntry, RibSnapshot, StateChange, BGP4MP, BGP4MP_ET, TABLE_DUMP_V2,
};
use bgpworms_types::{Asn, Prefix};
use bgpworms_wire::cursor::Cursor;
use bgpworms_wire::{decode_message, BgpMessage, CodecConfig};
use std::io::Read;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Upper bound on a single MRT record body; real archives stay far below
/// this, and it caps memory on corrupt length fields.
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// A streaming reader over an MRT archive.
pub struct MrtReader<R: Read> {
    inner: R,
    /// Records read so far (including skipped/unknown ones).
    pub records_read: u64,
}

impl<R: Read> MrtReader<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        MrtReader {
            inner,
            records_read: 0,
        }
    }

    /// Reads the next record; `Ok(None)` at clean end-of-archive.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        match self.next_raw()? {
            None => Ok(None),
            Some(raw) => parse_record(raw).map(Some),
        }
    }

    /// Reads the next record's common header and full body without
    /// parsing; `Ok(None)` at clean end-of-archive. Errors here are
    /// *structural*: the stream framing is damaged (truncated header or
    /// body, implausible declared length, I/O failure) and there is no
    /// reliable next-record boundary to continue from — which is exactly
    /// what separates them from the per-record parse errors
    /// [`LossyMrtReader`] skips.
    fn next_raw(&mut self) -> Result<Option<RawRecord>, MrtError> {
        let mut header_buf = [0u8; 12];
        match read_exact_or_eof(&mut self.inner, &mut header_buf)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => {
                return Err(MrtError::Truncated {
                    what: "MRT common header",
                })
            }
            ReadOutcome::Full => {}
        }

        let timestamp =
            u32::from_be_bytes([header_buf[0], header_buf[1], header_buf[2], header_buf[3]]);
        let mrt_type = u16::from_be_bytes([header_buf[4], header_buf[5]]);
        let subtype = u16::from_be_bytes([header_buf[6], header_buf[7]]);
        let length =
            u32::from_be_bytes([header_buf[8], header_buf[9], header_buf[10], header_buf[11]]);

        if length > MAX_RECORD_LEN {
            return Err(MrtError::BadRecordLength(length));
        }

        let mut body = vec![0u8; length as usize];
        self.inner
            .read_exact(&mut body)
            .map_err(|_| MrtError::Truncated {
                what: "MRT record body",
            })?;

        self.records_read += 1;

        Ok(Some(RawRecord {
            timestamp,
            mrt_type,
            subtype,
            body,
        }))
    }
}

/// A fully-read but not yet parsed record: common-header fields plus the
/// complete body. Once one of these exists, the stream is positioned at
/// the next record boundary — any parse failure below is confined to this
/// record, which is what makes lossy skipping sound.
struct RawRecord {
    timestamp: u32,
    mrt_type: u16,
    subtype: u16,
    body: Vec<u8>,
}

/// Parses one fully-read record. Errors here never damage the stream
/// position; strict readers surface them, lossy readers tally and skip.
fn parse_record(raw: RawRecord) -> Result<MrtRecord, MrtError> {
    let mut header = MrtHeader {
        timestamp: raw.timestamp,
        microseconds: None,
        mrt_type: raw.mrt_type,
        subtype: raw.subtype,
    };

    // The *_ET types carry a microsecond field at the head of the body.
    let body_slice: &[u8] = if raw.mrt_type == BGP4MP_ET {
        if raw.body.len() < 4 {
            return Err(MrtError::Truncated {
                what: "extended timestamp",
            });
        }
        header.microseconds = Some(u32::from_be_bytes([
            raw.body[0],
            raw.body[1],
            raw.body[2],
            raw.body[3],
        ]));
        &raw.body[4..]
    } else {
        &raw.body
    };

    match raw.mrt_type {
        BGP4MP | BGP4MP_ET => parse_bgp4mp(header, body_slice),
        TABLE_DUMP_V2 => parse_table_dump_v2(header, body_slice),
        _ => Ok(MrtRecord::Unknown {
            header,
            body: body_slice.to_vec(),
        }),
    }
}

/// Per-[`MrtErrorKind`] tally of records a [`LossyMrtReader`] skipped.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SkipTally {
    counts: std::collections::BTreeMap<MrtErrorKind, u64>,
}

impl SkipTally {
    /// Total records skipped, across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Records skipped for errors of `kind`.
    pub fn count(&self, kind: MrtErrorKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Non-zero (kind, count) pairs in ascending kind order.
    pub fn iter(&self) -> impl Iterator<Item = (MrtErrorKind, u64)> + '_ {
        self.counts.iter().map(|(&k, &n)| (k, n))
    }

    fn record(&mut self, kind: MrtErrorKind) {
        *self.counts.entry(kind).or_insert(0) += 1;
    }
}

impl std::fmt::Display for SkipTally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.counts.is_empty() {
            return f.write_str("none");
        }
        for (i, (kind, n)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{kind}: {n}")?;
        }
        Ok(())
    }
}

/// A lossy streaming reader for archives from the wild: undecodable
/// records whose bodies were fully read are skipped and tallied per error
/// kind; structural stream damage (truncated framing, implausible length,
/// I/O failure) still stops the stream. See the module docs for the
/// strict/lossy split.
pub struct LossyMrtReader<R: Read> {
    reader: MrtReader<R>,
    skipped: SkipTally,
}

impl<R: Read> LossyMrtReader<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        LossyMrtReader {
            reader: MrtReader::new(inner),
            skipped: SkipTally::default(),
        }
    }

    /// Reads the next *decodable* record, skipping (and tallying)
    /// undecodable ones; `Ok(None)` at clean end-of-archive; `Err` only
    /// for structural stream damage.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        loop {
            match self.reader.next_raw()? {
                None => return Ok(None),
                Some(raw) => match parse_record(raw) {
                    Ok(record) => return Ok(Some(record)),
                    Err(e) => self.skipped.record(e.kind()),
                },
            }
        }
    }

    /// Records read so far, including skipped ones.
    pub fn records_read(&self) -> u64 {
        self.reader.records_read
    }

    /// What was skipped so far, tallied per error kind.
    pub fn skipped(&self) -> &SkipTally {
        &self.skipped
    }
}

impl<R: Read> Iterator for LossyMrtReader<R> {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, MrtError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 {
                ReadOutcome::Eof
            } else {
                ReadOutcome::Partial
            });
        }
        filled += n;
    }
    Ok(ReadOutcome::Full)
}

fn read_ip(c: &mut Cursor<'_>, afi: u16) -> Result<IpAddr, MrtError> {
    match afi {
        1 => Ok(IpAddr::V4(Ipv4Addr::from(c.u32("ipv4 address")?))),
        2 => Ok(IpAddr::V6(Ipv6Addr::from(c.u128("ipv6 address")?))),
        other => Err(MrtError::BadAddressFamily(other)),
    }
}

fn parse_bgp4mp(header: MrtHeader, body: &[u8]) -> Result<MrtRecord, MrtError> {
    let mut c = Cursor::new(body);
    let as4 = matches!(
        header.subtype,
        bgp4mp_subtype::MESSAGE_AS4 | bgp4mp_subtype::STATE_CHANGE_AS4
    );
    let (peer_as, local_as) = if as4 {
        (c.u32("peer AS")?, c.u32("local AS")?)
    } else {
        (u32::from(c.u16("peer AS")?), u32::from(c.u16("local AS")?))
    };
    let ifindex = c.u16("interface index")?;
    let afi = c.u16("address family")?;
    let peer_ip = read_ip(&mut c, afi)?;
    let local_ip = read_ip(&mut c, afi)?;

    match header.subtype {
        bgp4mp_subtype::MESSAGE | bgp4mp_subtype::MESSAGE_AS4 => {
            let cfg = if as4 {
                CodecConfig::modern()
            } else {
                CodecConfig::legacy()
            };
            let rest = c.take_rest();
            let (msg, _) = decode_message(rest, cfg)?;
            let update = match msg {
                BgpMessage::Update(u) => u,
                // OPENs/KEEPALIVEs inside MESSAGE records are legal but rare;
                // surface them as empty updates so streaming callers can skip.
                _ => bgpworms_types::RouteUpdate::default(),
            };
            Ok(MrtRecord::Bgp4mp(Bgp4mpMessage {
                header,
                peer_as: Asn::new(peer_as),
                local_as: Asn::new(local_as),
                ifindex,
                peer_ip,
                local_ip,
                update,
            }))
        }
        bgp4mp_subtype::STATE_CHANGE | bgp4mp_subtype::STATE_CHANGE_AS4 => {
            let old_state = c.u16("old state")?;
            let new_state = c.u16("new state")?;
            Ok(MrtRecord::StateChange(StateChange {
                header,
                peer_as: Asn::new(peer_as),
                local_as: Asn::new(local_as),
                peer_ip,
                local_ip,
                old_state,
                new_state,
            }))
        }
        other => Err(MrtError::UnsupportedSubtype {
            mrt_type: header.mrt_type,
            subtype: other,
        }),
    }
}

fn parse_table_dump_v2(header: MrtHeader, body: &[u8]) -> Result<MrtRecord, MrtError> {
    let mut c = Cursor::new(body);
    match header.subtype {
        tdv2_subtype::PEER_INDEX_TABLE => {
            let collector_id = c.u32("collector id")?;
            let name_len = c.u16("view name length")? as usize;
            let name_bytes = c.take("view name", name_len)?;
            let view_name = String::from_utf8_lossy(name_bytes).into_owned();
            let peer_count = c.u16("peer count")? as usize;
            let mut peers = Vec::with_capacity(peer_count);
            for _ in 0..peer_count {
                let ptype = c.u8("peer type")?;
                let bgp_id = c.u32("peer bgp id")?;
                let ip = if ptype & 0x01 != 0 {
                    IpAddr::V6(Ipv6Addr::from(c.u128("peer ipv6")?))
                } else {
                    IpAddr::V4(Ipv4Addr::from(c.u32("peer ipv4")?))
                };
                let asn = if ptype & 0x02 != 0 {
                    c.u32("peer as4")?
                } else {
                    u32::from(c.u16("peer as2")?)
                };
                peers.push(PeerEntry {
                    bgp_id,
                    ip,
                    asn: Asn::new(asn),
                });
            }
            Ok(MrtRecord::PeerIndexTable(PeerIndexTable {
                collector_id,
                view_name,
                peers,
            }))
        }
        tdv2_subtype::RIB_IPV4_UNICAST | tdv2_subtype::RIB_IPV6_UNICAST => {
            let sequence = c.u32("rib sequence")?;
            let prefix = if header.subtype == tdv2_subtype::RIB_IPV4_UNICAST {
                Prefix::V4(bgpworms_wire::nlri::decode_v4(&mut c)?)
            } else {
                Prefix::V6(bgpworms_wire::nlri::decode_v6(&mut c)?)
            };
            let entry_count = c.u16("rib entry count")? as usize;
            let mut entries = Vec::with_capacity(entry_count);
            for _ in 0..entry_count {
                let peer_index = c.u16("rib peer index")?;
                let originated_time = c.u32("rib originated time")?;
                let attr_len = c.u16("rib attribute length")? as usize;
                let attr_bytes = c.take("rib attributes", attr_len)?;
                // RFC 6396 §4.3.4: RIB attributes always use 4-octet ASNs.
                let decoded = bgpworms_wire::decode_attributes(attr_bytes, CodecConfig::modern())?;
                entries.push(RibEntry {
                    peer_index,
                    originated_time,
                    attrs: decoded.attrs,
                });
            }
            Ok(MrtRecord::Rib(RibSnapshot {
                header,
                sequence,
                prefix,
                entries,
            }))
        }
        other => Err(MrtError::UnsupportedSubtype {
            mrt_type: header.mrt_type,
            subtype: other,
        }),
    }
}

impl<R: Read> Iterator for MrtReader<R> {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Adapter over [`MrtReader`] that yields only BGP4MP update messages,
/// skipping state changes, RIB records, and unknown record types.
pub struct UpdateStream<R: Read> {
    reader: MrtReader<R>,
}

impl<R: Read> UpdateStream<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        UpdateStream {
            reader: MrtReader::new(inner),
        }
    }
}

impl<R: Read> Iterator for UpdateStream<R> {
    type Item = Result<Bgp4mpMessage, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.reader.next_record() {
                Ok(Some(MrtRecord::Bgp4mp(m))) => return Some(Ok(m)),
                Ok(Some(_)) => continue,
                Ok(None) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_archive_is_clean_eof() {
        let mut r = MrtReader::new(&[][..]);
        assert!(r.next_record().unwrap().is_none());
        assert_eq!(r.records_read, 0);
    }

    #[test]
    fn partial_header_is_truncation() {
        let mut r = MrtReader::new(&[0u8; 5][..]);
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Truncated {
                what: "MRT common header"
            })
        ));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut h = vec![0u8; 12];
        h[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut r = MrtReader::new(h.as_slice());
        assert!(matches!(r.next_record(), Err(MrtError::BadRecordLength(_))));
    }

    #[test]
    fn unknown_type_surfaces_body() {
        let mut rec = vec![0u8; 12];
        rec[4..6].copy_from_slice(&999u16.to_be_bytes());
        rec[8..12].copy_from_slice(&3u32.to_be_bytes());
        rec.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let mut r = MrtReader::new(rec.as_slice());
        match r.next_record().unwrap().unwrap() {
            MrtRecord::Unknown { header, body } => {
                assert_eq!(header.mrt_type, 999);
                assert_eq!(body, vec![0xAA, 0xBB, 0xCC]);
            }
            other => panic!("expected unknown, got {other:?}"),
        }
        assert!(r.next_record().unwrap().is_none());
    }

    fn good_update_record() -> Vec<u8> {
        use bgpworms_types::{AsPath, PathAttributes, RouteUpdate};
        let attrs = PathAttributes {
            as_path: AsPath::from_asns([Asn::new(2), Asn::new(1)]),
            next_hop: Some("10.0.0.1".parse().unwrap()),
            ..PathAttributes::default()
        };
        let update = RouteUpdate::announce("192.0.2.0/24".parse().unwrap(), attrs);
        let mut buf = Vec::new();
        crate::write::write_update(
            &mut buf,
            0,
            Asn::new(2),
            Asn::new(64_500),
            "10.0.0.2".parse().unwrap(),
            &update,
        )
        .unwrap();
        buf
    }

    /// A BGP4MP record whose body is fully present but carries a subtype
    /// this decoder cannot interpret — the canonical *skippable* error.
    fn unsupported_subtype_record() -> Vec<u8> {
        let mut rec = Vec::new();
        rec.extend_from_slice(&0u32.to_be_bytes());
        rec.extend_from_slice(&BGP4MP.to_be_bytes());
        rec.extend_from_slice(&99u16.to_be_bytes());
        // peer AS + local AS + ifindex + AFI(=1) + two IPv4 addresses.
        let body = {
            let mut b = vec![0u8; 6];
            b.extend_from_slice(&1u16.to_be_bytes());
            b.extend_from_slice(&[0u8; 8]);
            b
        };
        rec.extend_from_slice(&(body.len() as u32).to_be_bytes());
        rec.extend_from_slice(&body);
        rec
    }

    /// A BGP4MP MESSAGE record whose (fully read) body ends mid-field —
    /// a *parse* truncation, not a stream truncation, so it is skippable.
    fn short_body_record() -> Vec<u8> {
        let mut rec = Vec::new();
        rec.extend_from_slice(&0u32.to_be_bytes());
        rec.extend_from_slice(&BGP4MP.to_be_bytes());
        rec.extend_from_slice(&crate::record::bgp4mp_subtype::MESSAGE.to_be_bytes());
        rec.extend_from_slice(&3u32.to_be_bytes());
        rec.extend_from_slice(&[0u8; 3]);
        rec
    }

    #[test]
    fn lossy_reader_skips_undecodable_records_and_tallies_by_kind() {
        use crate::error::MrtErrorKind;
        let good = good_update_record();
        let mut archive = Vec::new();
        archive.extend_from_slice(&good);
        archive.extend_from_slice(&unsupported_subtype_record());
        archive.extend_from_slice(&good);
        archive.extend_from_slice(&short_body_record());
        archive.extend_from_slice(&good);

        // Strict reading stops at the first bad record...
        let mut strict = MrtReader::new(archive.as_slice());
        assert!(strict.next_record().unwrap().is_some());
        assert!(strict.next_record().is_err());

        // ...lossy reading yields every good record and tallies the rest.
        let mut lossy = LossyMrtReader::new(archive.as_slice());
        let mut updates = 0;
        while let Some(record) = lossy.next_record().unwrap() {
            assert!(matches!(record, MrtRecord::Bgp4mp(_)));
            updates += 1;
        }
        assert_eq!(updates, 3);
        assert_eq!(
            lossy.records_read(),
            5,
            "skipped records still count as read"
        );
        assert_eq!(lossy.skipped().total(), 2);
        assert_eq!(lossy.skipped().count(MrtErrorKind::UnsupportedSubtype), 1);
        assert_eq!(lossy.skipped().count(MrtErrorKind::Truncated), 1);
        assert_eq!(lossy.skipped().count(MrtErrorKind::Bgp), 0);
        assert_eq!(
            lossy.skipped().to_string(),
            "truncated: 1, unsupported-subtype: 1"
        );
    }

    #[test]
    fn lossy_reader_still_stops_on_structural_damage() {
        // A record that *promises* more body than the stream holds: there
        // is no next-record boundary to skip to, so even the lossy reader
        // must report the stream as damaged.
        let mut rec = vec![0u8; 12];
        rec[8..12].copy_from_slice(&10u32.to_be_bytes());
        rec.extend_from_slice(&[1, 2, 3]);
        let mut lossy = LossyMrtReader::new(rec.as_slice());
        assert!(matches!(
            lossy.next_record(),
            Err(MrtError::Truncated {
                what: "MRT record body"
            })
        ));

        let mut clean = LossyMrtReader::new(&[][..]);
        assert!(clean.next_record().unwrap().is_none());
        assert_eq!(clean.skipped().to_string(), "none");
    }

    #[test]
    fn truncated_body_is_error() {
        let mut rec = vec![0u8; 12];
        rec[4..6].copy_from_slice(&999u16.to_be_bytes());
        rec[8..12].copy_from_slice(&10u32.to_be_bytes());
        rec.extend_from_slice(&[1, 2, 3]); // promised 10, provide 3
        let mut r = MrtReader::new(rec.as_slice());
        assert!(matches!(
            r.next_record(),
            Err(MrtError::Truncated {
                what: "MRT record body"
            })
        ));
    }
}
