//! # bgpworms
//!
//! A full reproduction of **"BGP Communities: Even more Worms in the
//! Routing Can"** (Streibelt et al., IMC 2018) as a Rust workspace: the
//! measurement pipeline of §4, the attack scenarios of §5, the lab matrix
//! of §6, and the in-the-wild experiment harness of §7 — all running over
//! a from-scratch BGP substrate (wire codec, MRT archives, AS-topology
//! generator, policy-rich route-propagation simulator, and a data plane
//! with Atlas-style probing).
//!
//! This crate is the façade: it re-exports every subsystem under one
//! namespace and hosts the runnable examples and cross-crate integration
//! tests. (`ARCHITECTURE.md` at the repository root walks these layers
//! with one diagram each; `README.md` has the quickstart and CI gates.)
//!
//! ## Layer map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `bgpworms-types` | ASNs, prefixes, communities, AS paths, path attributes |
//! | [`wire`] | `bgpworms-wire` | RFC 4271 BGP message codec |
//! | [`mrt`] | `bgpworms-mrt` | RFC 6396 MRT reader/writer |
//! | [`topology`] | `bgpworms-topology` | AS graph, relationships, Internet generator |
//! | [`routesim`] | `bgpworms-routesim` | policy-rich BGP propagation engine + collectors |
//! | [`dataplane`] | `bgpworms-dataplane` | FIBs, ping/traceroute, Atlas platform, looking glasses |
//! | [`analysis`] | `bgpworms-core` | the paper's §4 measurement pipeline |
//! | [`attacks`] | `bgpworms-attacks` | §5 scenarios, §6 lab, §7 wild experiments, Table 3 |
//! | [`monitor`] | `bgpworms-monitor` | §8 hygiene monitoring + §9 passive attack inference |
//!
//! ## Quickstart
//!
//! ```
//! use bgpworms::prelude::*;
//!
//! // A three-AS chain: stub AS1 buys transit from AS2, AS2 from AS3.
//! let mut topo = Topology::new();
//! topo.add_simple(Asn::new(1), Tier::Stub);
//! topo.add_simple(Asn::new(2), Tier::Transit);
//! topo.add_simple(Asn::new(3), Tier::Tier1);
//! topo.add_edge(Asn::new(2), Asn::new(1), EdgeKind::ProviderToCustomer);
//! topo.add_edge(Asn::new(3), Asn::new(2), EdgeKind::ProviderToCustomer);
//!
//! // AS1 announces a prefix tagged with an informational community.
//! // Compile the session once; `run` replays any number of schedules.
//! let sim = SimSpec::new(&topo).retain(RetainRoutes::All).compile();
//! let p: Prefix = "10.0.0.0/16".parse().unwrap();
//! let result = sim.run(&[Origination::announce(
//!     Asn::new(1), p, vec![Community::new(1, 100)],
//! )]);
//!
//! // The community propagated two hops (RFC 1997 transitivity).
//! let at_top = result.route_at(Asn::new(3), &p).unwrap();
//! assert!(at_top.has_community(Community::new(1, 100)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bgpworms_attacks as attacks;
pub use bgpworms_core as analysis;
pub use bgpworms_dataplane as dataplane;
pub use bgpworms_monitor as monitor;
pub use bgpworms_mrt as mrt;
pub use bgpworms_routesim as routesim;
pub use bgpworms_topology as topology;
pub use bgpworms_types as types;
pub use bgpworms_wire as wire;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use bgpworms_core::{
        ArchiveInput, BlackholeDetector, DatasetOverview, FilteringAnalysis, ObservationSet,
        PropagationAnalysis, TopValues, UsageAnalysis,
    };
    pub use bgpworms_dataplane::{ping, trace, AtlasPlatform, Fib, LookingGlass};
    pub use bgpworms_monitor::{
        Alert, AlertKind, CommunityDictionary, CommunityKind, DictionaryInference, HygieneReport,
        Monitor,
    };
    pub use bgpworms_mrt::{MrtReader, MrtRecord, UpdateStream};
    pub use bgpworms_routesim::{
        ActScope, BlackholeService, CollectorSpec, CommunityPropagationPolicy, CompiledSim,
        FeedKind, OriginValidation, Origination, RetainRoutes, RouterConfig, SimSpec, Workload,
        WorkloadParams,
    };
    pub use bgpworms_topology::{EdgeKind, PrefixAllocation, Role, Tier, Topology, TopologyParams};
    pub use bgpworms_types::{
        AsPath, Asn, Community, Ipv4Prefix, Ipv6Prefix, PathAttributes, Prefix, RouteUpdate,
    };
    pub use bgpworms_wire::{decode_message, encode_update, BgpMessage, CodecConfig};
}
