//! The full §4 measurement pipeline, end to end: generate an Internet, run
//! a month-like workload, archive the collectors as MRT, parse the MRT
//! back, and print every §4 statistic — including per-figure series.
//!
//! ```sh
//! cargo run --release --example measure_communities [seed]
//! ```

use bgpworms::analysis::propagation::render_table2;
use bgpworms::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018);

    // Internet + workload + propagation.
    let topo = TopologyParams::small().seed(seed).build();
    let alloc = PrefixAllocation::assign(
        &topo,
        bgpworms::topology::addressing::AddressingParams {
            seed,
            ..Default::default()
        },
    );
    let workload = Workload::generate(
        &topo,
        &alloc,
        &WorkloadParams {
            seed,
            ..Default::default()
        },
    );
    let sim = workload.simulation(&topo).threads(4).compile();
    let result = sim.run(&workload.originations);

    // Collector MRT out, observation set in.
    let archives = bgpworms::routesim::archive_all(&workload.collectors, &result.observations, 0)
        .expect("in-memory archive");
    let total_mrt: usize = archives.iter().map(|a| a.updates_mrt.len()).sum();
    println!(
        "archived {} collectors, {} bytes of BGP4MP MRT",
        archives.len(),
        total_mrt
    );
    let inputs: Vec<ArchiveInput> = archives
        .into_iter()
        .map(|a| ArchiveInput {
            platform: a.platform,
            collector: a.name,
            mrt: a.updates_mrt,
        })
        .collect();
    let set = ObservationSet::from_archives(&inputs).expect("simulator MRT parses");
    println!("parsed {} observations\n", set.observations.len());

    // Table 1.
    println!("--- Table 1: dataset overview ---");
    println!("{}", DatasetOverview::compute(&set).render());

    // Fig 4.
    let usage = UsageAnalysis::compute(&set);
    println!("--- Fig 4: community usage ---");
    println!(
        "updates with >=1 community: {:.1}%   with more than two: {:.1}%",
        usage.overall_fraction * 100.0,
        usage.fraction_more_than(2) * 100.0
    );

    // Fig 5 + Table 2.
    let detector = BlackholeDetector::conventional();
    let prop = PropagationAnalysis::compute(&set, &detector);
    let all = prop.fig5a_all();
    let bh = prop.fig5a_blackhole();
    println!("\n--- Fig 5a: propagation distance ---");
    println!(
        "all communities: n={} median={:?} >4 hops: {:.1}%",
        all.len(),
        all.quantile(0.5),
        (1.0 - all.fraction_at(4.0)) * 100.0
    );
    println!(
        "blackhole subset: n={} median={:?}",
        bh.len(),
        bh.quantile(0.5)
    );
    println!("\n--- Table 2: ASes with observed communities ---");
    println!("{}", render_table2(&prop.table2));
    println!(
        "transit forwarders: {}/{} ({:.1}%)",
        prop.forwarders.len(),
        prop.transit_ases.len(),
        prop.forwarder_fraction() * 100.0
    );

    // Fig 5c.
    let tv = TopValues::compute(&set);
    println!("\n--- Fig 5c: top community values ---");
    println!("{}", tv.render(10));

    // Fig 6.
    let filt = FilteringAnalysis::compute(&set);
    let (fwd, fil) = filt.fractions(0);
    println!("--- Fig 6: filtering inference ---");
    println!(
        "of {} observed AS edges: {:.1}% show forwarding, {:.1}% show filtering \
         ({} strict forwarders, {} strict filterers, {} mixed)",
        filt.all_edges.len(),
        fwd * 100.0,
        fil * 100.0,
        filt.strict_forwarders().count(),
        filt.strict_filterers().count(),
        filt.mixed().count()
    );
}
