//! Walkthrough of the paper's Fig 7 remotely-triggered-blackholing attack,
//! with and without hijacking, including the defences that stop it.
//!
//! ```sh
//! cargo run --release --example rtbh_attack
//! ```

use bgpworms::attacks::scenarios::rtbh::RtbhScenario;
use bgpworms::prelude::*;

fn main() {
    println!("== Fig 7(a): RTBH without hijacking ==\n");
    println!(
        "AS1 (attackee) originates 10.10.10.0/24 and buys transit from AS2\n\
         (the attacker) and AS3 (the community target, which offers ASN:666\n\
         blackholing). AS2 merely *transits* AS1's announcement but adds\n\
         AS3:666 on egress.\n"
    );
    let report = RtbhScenario::default().run();
    println!("{report}");

    println!("== Fig 7(b): RTBH with hijacking ==\n");
    let report = RtbhScenario {
        hijack: true,
        ..RtbhScenario::default()
    }
    .run();
    println!("{report}");

    println!("== Defence 1: origin validation (correctly ordered) ==\n");
    let report = RtbhScenario {
        hijack: true,
        validation: OriginValidation::Irr {
            validate_after_blackhole: false,
        },
        ..RtbhScenario::default()
    }
    .run();
    println!("{report}");

    println!("== …which the attacker circumvents by polluting the IRR (§7.3) ==\n");
    let report = RtbhScenario {
        hijack: true,
        validation: OriginValidation::Irr {
            validate_after_blackhole: false,
        },
        attacker_registers_irr: true,
        ..RtbhScenario::default()
    }
    .run();
    println!("{report}");

    println!("== Defence 2: an intermediate AS that strips communities ==\n");
    let report = RtbhScenario {
        intermediate: Some(CommunityPropagationPolicy::StripAll),
        ..RtbhScenario::default()
    }
    .run();
    println!("{report}");

    println!(
        "The necessary condition of §5.4 — community propagation along the\n\
         entire path from attacker to target — fails, and the attack dies."
    );
}
