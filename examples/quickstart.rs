//! Quickstart: generate a small Internet, run a month-like workload, and
//! print the paper's headline community statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bgpworms::prelude::*;

fn main() {
    // 1. A ~130-AS Internet: tier-1 clique, transit hierarchy, stubs, IXPs.
    let topo = TopologyParams::small().seed(42).build();
    let alloc = PrefixAllocation::assign(
        &topo,
        bgpworms::topology::addressing::AddressingParams::default(),
    );
    println!(
        "topology: {} ASes, {} prefixes ({} IPv4 / {} IPv6)",
        topo.len(),
        alloc.len(),
        alloc.v4_count(),
        alloc.v6_count()
    );

    // 2. A policy workload: per-AS community handling, services, collectors.
    let workload = Workload::generate(&topo, &alloc, &WorkloadParams::default());
    println!(
        "workload: {} origination episodes, {} collectors",
        workload.originations.len(),
        workload.collectors.len()
    );

    // 3. Propagate everything to convergence.
    let sim = workload.simulation(&topo).threads(4).compile();
    let result = sim.run(&workload.originations);
    println!(
        "propagation: {} update events, converged = {}",
        result.events, result.converged
    );

    // 4. Archive the collectors as MRT and parse them back — the analysis
    //    pipeline never touches simulator internals.
    let archives = bgpworms::routesim::archive_all(&workload.collectors, &result.observations, 0)
        .expect("in-memory archive");
    let inputs: Vec<ArchiveInput> = archives
        .into_iter()
        .map(|a| ArchiveInput {
            platform: a.platform,
            collector: a.name,
            mrt: a.updates_mrt,
        })
        .collect();
    let set = ObservationSet::from_archives(&inputs).expect("simulator MRT parses");

    // 5. The paper's §4 numbers.
    let usage = UsageAnalysis::compute(&set);
    println!(
        "\ncommunity usage: {:.1}% of updates carry >=1 community \
         ({:.1}% carry more than two)",
        usage.overall_fraction * 100.0,
        usage.fraction_more_than(2) * 100.0
    );

    let analysis = PropagationAnalysis::compute(&set, &BlackholeDetector::conventional());
    let all = analysis.fig5a_all();
    println!(
        "propagation: {:.1}% of communities travel more than four AS hops",
        (1.0 - all.fraction_at(4.0)) * 100.0
    );
    println!(
        "transit forwarders: {} of {} transit ASes relay foreign communities ({:.1}%)",
        analysis.forwarders.len(),
        analysis.transit_ases.len(),
        analysis.forwarder_fraction() * 100.0
    );

    let overview = DatasetOverview::compute(&set);
    println!("\nTable 1 analogue:\n{}", overview.render());
}
