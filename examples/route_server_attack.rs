//! Walkthrough of the Fig 9 route-manipulation attack at an IXP route
//! server, plus the §7.6-style automated blackhole-community survey.
//!
//! ```sh
//! cargo run --release --example route_server_attack
//! ```

use bgpworms::attacks::scenarios::route_manipulation::{
    RouteManipulationScenario, RsAttackVariant,
};
use bgpworms::attacks::wild::survey::{self, SurveyParams};
use bgpworms::prelude::*;
use bgpworms::routesim::RsEvalOrder;

fn main() {
    println!("== Fig 9: conflicting control communities at a route server ==\n");
    println!(
        "The origin tags its announcement 'announce to AS24' (RS:24); the\n\
         attacker — an intermediate provider — adds the conflicting 'do not\n\
         announce to AS24' (0:24). The server's evaluation order decides.\n"
    );
    let report = RouteManipulationScenario::default().run();
    println!("{report}");

    println!("== The same attack against an announce-first server fails ==\n");
    let report = RouteManipulationScenario {
        eval_order: RsEvalOrder::AnnounceFirst,
        ..RouteManipulationScenario::default()
    }
    .run();
    println!("{report}");

    println!("== Hijack variant: the attacker is itself a member ==\n");
    let report = RouteManipulationScenario {
        variant: RsAttackVariant::Hijack,
        ..RouteManipulationScenario::default()
    }
    .run();
    println!("{report}");

    println!("== §7.6: automated blackhole-community survey ==\n");
    println!(
        "Advertise a /24 from a PEERING-like platform once per candidate\n\
         blackhole community; ping from a fixed Atlas set before and after;\n\
         diff per-vantage-point responsiveness; re-run to confirm.\n"
    );
    let report = survey::run(&SurveyParams {
        topo: TopologyParams::small().seed(2018),
        workload: WorkloadParams {
            blackhole_service_prob: 0.7,
            ..WorkloadParams::default()
        },
        n_vps: 60,
        max_communities: 40,
        verify_repeatability: true,
    });
    println!(
        "tested {} candidate communities from {} vantage points",
        report.communities_tested, report.total_vps
    );
    println!(
        "effective: {} communities ({:.1}%) affecting {} VPs ({:.1}%)",
        report.effective.len(),
        report.effective_fraction() * 100.0,
        report.affected_vps.len(),
        report.affected_vp_fraction() * 100.0
    );
    println!("repeatable across rounds: {:?}", report.repeatable);
    println!("\nAS-hop distance from injector to each acting target:");
    for (hops, n) in &report.hop_distribution {
        let label = match hops {
            0 => "not on path".to_string(),
            1 => "direct peer".to_string(),
            n => format!("{n} hops"),
        };
        println!("  {label:>12}: {n} community-VP pairs");
    }
    for (community, vps) in report.effective.iter().take(5) {
        println!("  e.g. {community} blackholed {} vantage points", vps.len());
    }
}
