//! The paper's future-work agenda, executed: the §7.6 "likely" blackhole
//! corpus, non-RTBH (steering) surveys with path-change inference, the
//! §7.7 fake-location injection, the §4.4 filtering-vs-relationship
//! correlation, and the footnote-1 RFC 8092 large-community channel.
//!
//! ```sh
//! cargo run --release --example future_work
//! ```

use bgpworms::analysis::{
    FilteringAnalysis, LargeCommunityAnalysis, RelClass, RelationshipCorrelation,
};
use bgpworms::attacks::wild::{extended_survey, survey::SurveyParams};
use bgpworms::prelude::*;
use bgpworms::routesim::archive_all;
use bgpworms::topology::Role;

fn survey_params() -> SurveyParams {
    SurveyParams {
        topo: TopologyParams::small().seed(2018),
        workload: WorkloadParams {
            blackhole_service_prob: 0.7,
            steering_service_prob: 0.6,
            location_tag_prob: 0.5,
            ..WorkloadParams::default()
        },
        n_vps: 60,
        max_communities: 120,
        verify_repeatability: false,
    }
}

fn main() {
    println!("== §7.6 future work: the 'likely' (unverified) corpus ==\n");
    let report = extended_survey::likely_survey(&survey_params());
    println!(
        "verified corpus: {:>3} tested, {:>2} effective ({:.0}%)",
        report.verified.tested,
        report.verified.effective,
        report.verified.effective_fraction() * 100.0
    );
    println!(
        "likely corpus:   {:>3} tested, {:>2} effective ({:.0}%)",
        report.likely.tested,
        report.likely.effective,
        report.likely.effective_fraction() * 100.0
    );
    println!(
        "\nThe verification step of Giotsas et al. is what makes the survey\n\
         meaningful: blackhole-shaped candidates without a service behind them\n\
         are inert.\n"
    );

    println!("== §7.6 limitations: non-RTBH communities need subtler inference ==\n");
    let steering = extended_survey::steering_survey(&survey_params());
    println!(
        "prepend communities tested: {}; with a visible path change: {} ({:.0}%)",
        steering.tested,
        steering.effective.len(),
        steering.effective_fraction() * 100.0
    );
    println!(
        "vantage points that lost reachability: {} — the binary ping test the\n\
         RTBH survey uses would have reported *nothing*; only the per-VP\n\
         traceroute diff exposes the steering effect.\n",
        steering.reachability_lost
    );

    println!("== §7.7: injecting contradictory location communities ==\n");
    match extended_survey::location_injection(&survey_params()) {
        Some(r) => {
            println!(
                "injected {} and {} on one announcement ('LAX' per {}, 'FRA' per {});",
                r.injected[0],
                r.injected[1],
                r.injected[0].owner(),
                r.injected[1].owner()
            );
            println!(
                "{} of {} collectors observed the prefix; {} saw both contradictory\n\
                 tags intact — \"we cannot exclude that other operators may rely on\n\
                 community-based location information in unanticipated ways.\"\n",
                r.collectors_observing, r.total_collectors, r.collectors_with_contradiction
            );
        }
        None => println!("no location-tagging ASes in this workload\n"),
    }

    println!("== §4.4 future work: filtering vs business relationship ==\n");
    let topo = TopologyParams::small().seed(2018).build();
    let alloc = PrefixAllocation::assign(
        &topo,
        bgpworms::topology::addressing::AddressingParams {
            seed: 2018,
            ..Default::default()
        },
    );
    let workload = Workload::generate(&topo, &alloc, &WorkloadParams::default());
    let sim = workload.simulation(&topo).threads(4).compile();
    let result = sim.run(&workload.originations);
    let archives = archive_all(&workload.collectors, &result.observations, 0).expect("archive");
    let inputs: Vec<ArchiveInput> = archives
        .into_iter()
        .map(|a| ArchiveInput {
            platform: a.platform,
            collector: a.name,
            mrt: a.updates_mrt,
        })
        .collect();
    let set = ObservationSet::from_archives(&inputs).expect("parse");
    let filters = FilteringAnalysis::compute(&set);
    let corr = RelationshipCorrelation::compute(&filters, |exporter, importer| {
        match topo.role_of(exporter, importer) {
            Some(Role::Customer) => Some(RelClass::ToCustomer),
            Some(Role::Provider) => Some(RelClass::ToProvider),
            Some(Role::Peer) => Some(RelClass::Peer),
            None if topo.shared_ixp(exporter, importer).is_some() => Some(RelClass::Peer),
            None => None,
        }
    });
    print!("{}", corr.render());
    println!(
        "\nEven with ground-truth relationships the classes barely separate —\n\
         the paper's finding that CAIDA's classification is \"too coarse\n\
         grained\" is a property of the problem, not of the dataset.\n"
    );

    println!("== Footnote 1: the RFC 8092 large-community channel ==\n");
    let topo4 = TopologyParams::small()
        .seed(2018)
        .four_byte_stubs(0.15)
        .build();
    let alloc4 = PrefixAllocation::assign(
        &topo4,
        bgpworms::topology::addressing::AddressingParams {
            seed: 2018,
            ..Default::default()
        },
    );
    let params4 = WorkloadParams {
        large_community_adoption: 0.8,
        ..WorkloadParams::default()
    };
    let workload4 = Workload::generate(&topo4, &alloc4, &params4);
    let sim4 = workload4.simulation(&topo4).threads(4).compile();
    let result4 = sim4.run(&workload4.originations);
    let archives4 = archive_all(&workload4.collectors, &result4.observations, 0).expect("archive");
    let inputs4: Vec<ArchiveInput> = archives4
        .into_iter()
        .map(|a| ArchiveInput {
            platform: a.platform,
            collector: a.name,
            mrt: a.updates_mrt,
        })
        .collect();
    let set4 = ObservationSet::from_archives(&inputs4).expect("parse");
    print!("{}", LargeCommunityAnalysis::compute(&set4).render());
    println!(
        "\nWith RFC 8092 adopted, 4-byte-ASN networks tag under their own name\n\
         instead of hiding in the anonymous private-ASN bundles of §4.3 — the\n\
         same transitive-propagation worms apply, but at least attribution works."
    );
}
