//! The paper's future agenda (§9), made concrete: inferring BGP-community
//! attacks from passive collector data and attributing the tagger.
//!
//! The pipeline:
//!
//! 1. generate an Internet and inject attacks of every §5 class (plus the
//!    benign workload — legitimate RTBH episodes included, which are the
//!    detectors' hardest negatives);
//! 2. parse the collectors' MRT archives (the only input — strictly
//!    passive);
//! 3. infer community semantics behaviourally (no `:666` hints);
//! 4. attribute taggers across vantage points and raise alerts;
//! 5. score everything against the simulator's ground truth.
//!
//! ```sh
//! cargo run --release --example attack_inference
//! ```

use bgpworms::analysis::FilteringAnalysis;
use bgpworms::monitor::{
    groundtruth, report, DictionaryEval, DictionaryInference, HygieneReport, Monitor,
};
use bgpworms::prelude::*;

fn main() {
    println!("== Building a labeled Internet (benign workload + injected attacks) ==\n");
    let run = groundtruth::build(&groundtruth::LabeledRunParams {
        topo: TopologyParams::small(),
        workload: WorkloadParams {
            blackhole_service_prob: 0.8,
            steering_service_prob: 0.7,
            ..WorkloadParams::default()
        },
        seed: 2018,
        per_kind: 3,
    });
    println!(
        "{} ASes, {} collector observations, {} injected attacks:",
        run.topo.len(),
        run.observations.observations.len(),
        run.injections.len()
    );
    for inj in &run.injections {
        println!(
            "  {:<20} attacker {}  victim {}  target {}  prefix {}",
            inj.kind.label(),
            inj.attacker,
            inj.victim,
            inj.target,
            inj.attack_prefix
        );
    }

    println!("\n== Step 1: behavioural dictionary inference (no value conventions) ==\n");
    let (inferred, _evidence) = DictionaryInference::default().infer(&run.observations);
    println!(
        "inferred semantics for {} communities from behaviour alone:",
        inferred.len()
    );
    let eval = DictionaryEval::compare(&inferred, &run.truth_dict, &run.observed_communities);
    print!("{}", report::render_dictionary_eval(&eval));

    println!("\n== Step 2: detectors over passive data (with Fig 6 filter prior) ==\n");
    let filters = FilteringAnalysis::compute(&run.observations);
    let monitor = Monitor::new(&run.observations, &run.truth_dict)
        .with_filters(&filters)
        .with_topology(&run.topo);
    let alerts = monitor.run();
    for alert in &alerts {
        println!("  {alert}");
    }

    println!("\n== Step 3: score against ground truth ==\n");
    let eval = groundtruth::evaluate(&run, &alerts);
    print!("{}", report::render_detection(&run, &alerts, &eval));

    println!("\n== Step 4: §8 hygiene report for the same world ==\n");
    let hygiene = HygieneReport::compute(&run.observations, &run.truth_dict, 3);
    print!("{}", report::render_hygiene(&hygiene, 8));

    println!(
        "\nThe paper: \"Identifying an attacker in BGP is not trivial due to the\n\
         lack of authentication and integrity.\" — correct; but the combination\n\
         of cross-vantage-point tagger attribution, covering-prefix origin\n\
         checks, and forged-adjacency baselines recovers most injected attacks\n\
         with the true attacker in the suspected set."
    );
}
