//! Walkthrough of the paper's traffic-steering attacks: the Fig 2 prepend
//! teaser, the Fig 8(a) prepend-with-hijack interception, and the Fig 8(b)
//! local-pref "backup" abuse.
//!
//! ```sh
//! cargo run --release --example traffic_steering
//! ```

use bgpworms::attacks::scenarios::prepend_teaser::PrependTeaser;
use bgpworms::attacks::scenarios::steering::{LocalPrefScenario, PrependHijackScenario};
use bgpworms::prelude::*;

fn main() {
    println!("== Fig 2: the motivating prepend teaser ==\n");
    println!(
        "AS3 offers 'prepend ×n' via AS3:10n. The attacker AS2 — two hops\n\
         down the announcement path — tags the route; if AS4 forwards the\n\
         foreign community, AS3 inflates its own path and AS6's traffic\n\
         shifts to the alternate (possibly malicious) AS5.\n"
    );
    let report = PrependTeaser::default().run();
    println!("{report}");

    println!("== …but a community-stripping AS4 kills it ==\n");
    let report = PrependTeaser {
        transit_forwards_communities: false,
        ..PrependTeaser::default()
    }
    .run();
    println!("{report}");

    println!("== …and so does a customers-only service scope (§7.4) ==\n");
    let report = PrependTeaser {
        target_scope: ActScope::CustomersOnly,
        ..PrependTeaser::default()
    }
    .run();
    println!("{report}");

    println!("== Fig 8(a): prepend steering with hijack — interception ==\n");
    let report = PrependHijackScenario::default().run();
    println!("{report}");
    println!(
        "Traffic still reaches the victim — but through the monitor path.\n\
         This is an interception (RAPTOR-style), not an outage.\n"
    );

    println!("== Fig 8(b): local-pref 'backup' community abuse ==\n");
    let report = LocalPrefScenario::default().run();
    println!("{report}");
    println!(
        "The attackee's own community service was turned against it: its\n\
         egress now rides the expensive link. The paper leaves deciding\n\
         whether this is an attack or cost engineering 'to the informed\n\
         reader'."
    );
}
